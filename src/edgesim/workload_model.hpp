// Composable workload models beyond the default Poisson-diurnal process:
//
//  - TraceReplayModel      replays a recorded request trace from CSV
//                          (columns offset_s,region,sfc,rate_rps,duration_s),
//                          looping forever; every loop after the first is
//                          re-seeded and its per-flow rates re-jittered so
//                          long episodes do not see a verbatim repeat.
//  - FlashCrowdOverlay     correlated regional bursts: periodically boosts a
//                          rotating epicentre metro and its nearest
//                          neighbours by a rate multiplier.
//  - RateScaleOverlay      scales the whole rate surface by a constant.
//
// Overlays wrap ANY inner WorkloadModel: they modulate the inner model's
// rate surface and re-realise it as a Poisson stream (PoissonArrivalModel
// thinning). Over a trace-driven inner model this preserves the trace's
// rate shape, not its exact arrival instants — documented behaviour.
//
// A WorkloadModelFactory is how environments own models: core::EnvOptions
// carries a factory (copyable, so options still copy freely across actor /
// evaluator threads) and VnfEnv invokes it on every reset with the
// episode-derived seed.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "edgesim/workload.hpp"

namespace vnfm::edgesim {

/// Builds a workload model for a freshly reset environment. `options.seed`
/// is already the episode-derived stream seed. An empty factory means the
/// default Poisson-diurnal model (legacy, bit-identical streams).
using WorkloadModelFactory = std::function<std::unique_ptr<WorkloadModel>(
    const Topology& topology, const SfcCatalog& sfcs, const WorkloadOptions& options)>;

/// The explicit form of the default: Poisson-diurnal over the options.
[[nodiscard]] WorkloadModelFactory poisson_diurnal_factory();

/// One recorded arrival, offsets relative to the trace start.
struct TraceRow {
  double offset_s = 0.0;
  std::uint32_t region = 0;  ///< taken modulo the topology's node count
  std::uint32_t sfc = 0;     ///< taken modulo the SFC catalog size
  double rate_rps = 1.0;
  double duration_s = 60.0;
};

/// Replays a recorded trace as the request stream. The trace loops forever:
/// loop 0 is verbatim; loop l >= 1 re-seeds an RNG from (seed, l) and
/// re-jitters each flow's rate by ±options.rate_jitter, so replay episodes
/// stay trace-shaped without being periodic. Unlike the Poisson models,
/// next(now) may return an arrival exactly at `now`: rows sharing an offset
/// (second-resolution traces) are emitted back to back, never dropped. The
/// rate surface exposed to features/overlays is the empirical per-region
/// rate, bucketed over the trace span.
class TraceReplayModel final : public WorkloadModel {
 public:
  TraceReplayModel(const Topology& topology, const SfcCatalog& sfcs,
                   WorkloadOptions options,
                   std::shared_ptr<const std::vector<TraceRow>> trace);

  /// Parses a trace CSV (header offset_s,region,sfc,rate_rps,duration_s) via
  /// common/csv. Throws std::runtime_error on I/O or malformed rows and
  /// std::invalid_argument on an empty or unsorted trace.
  [[nodiscard]] static std::vector<TraceRow> load(const std::string& path);

  /// Factory replaying the trace at `path`. The file is read once, eagerly
  /// (so a missing trace fails at scenario-build time, not mid-training),
  /// and shared immutably by every environment the factory builds.
  [[nodiscard]] static WorkloadModelFactory factory(const std::string& path);

  [[nodiscard]] Request next(SimTime now) override;
  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override;
  [[nodiscard]] double total_rate(SimTime t) const override;
  [[nodiscard]] double peak_total_rate() const override;
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return std::make_unique<TraceReplayModel>(*this);
  }
  [[nodiscard]] std::string name() const override { return "trace-replay"; }
  [[nodiscard]] const WorkloadOptions& options() const noexcept override {
    return options_;
  }
  [[nodiscard]] std::uint64_t generated_count() const noexcept override {
    return next_request_id_;
  }

  /// Nominal trace duration (last offset plus the mean inter-arrival gap);
  /// loop l replays the trace shifted by l * span_s().
  [[nodiscard]] double span_s() const noexcept { return span_s_; }
  [[nodiscard]] std::uint64_t loops_completed() const noexcept { return loop_; }

 private:
  [[nodiscard]] std::size_t rate_bucket(SimTime t) const;

  const Topology& topology_;
  const SfcCatalog& sfcs_;
  WorkloadOptions options_;
  std::shared_ptr<const std::vector<TraceRow>> trace_;
  double span_s_ = 1.0;
  std::vector<std::vector<double>> bucket_rate_;  ///< [region][bucket] req/s
  double peak_total_rate_ = 0.0;

  std::size_t cursor_ = 0;  ///< next trace row to emit
  std::uint64_t loop_ = 0;
  Rng rng_;
  std::uint64_t next_request_id_ = 0;
};

struct FlashCrowdOptions {
  double magnitude = 3.0;      ///< rate multiplier inside a burst
  double period_s = 4.0 * 3600.0;  ///< burst spacing (one epicentre per window)
  double duration_s = 1800.0;  ///< burst length at the start of each window
  std::size_t spread = 3;      ///< epicentre + (spread-1) nearest metros boosted
  double start_s = 1800.0;     ///< first window opens here
};

/// Correlated regional bursts over any inner model: during each burst window
/// a deterministic, seed-derived epicentre metro and its nearest neighbours
/// (by propagation latency) see their arrival rate multiplied.
class FlashCrowdOverlay final : public PoissonArrivalModel {
 public:
  FlashCrowdOverlay(const Topology& topology, const SfcCatalog& sfcs,
                    WorkloadOptions options, std::unique_ptr<WorkloadModel> inner,
                    FlashCrowdOptions burst = {});
  FlashCrowdOverlay(const FlashCrowdOverlay& other);

  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override;
  [[nodiscard]] double peak_total_rate() const override;
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return std::make_unique<FlashCrowdOverlay>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "flash-crowd(" + inner_->name() + ")";
  }

  [[nodiscard]] const WorkloadModel& inner() const noexcept { return *inner_; }
  [[nodiscard]] const FlashCrowdOptions& burst_options() const noexcept { return burst_; }
  /// True when `region` is boosted at absolute time t.
  [[nodiscard]] bool in_burst(NodeId region, SimTime t) const;
  /// Epicentre of burst window `window` (derived from the stream seed).
  [[nodiscard]] NodeId epicentre(std::uint64_t window) const;

 private:
  std::unique_ptr<WorkloadModel> inner_;
  FlashCrowdOptions burst_;
  /// Per-epicentre boosted set: the metro plus its nearest neighbours.
  std::vector<std::vector<std::uint32_t>> boosted_;
};

/// Multiplies the whole inner rate surface by a constant factor.
class RateScaleOverlay final : public PoissonArrivalModel {
 public:
  RateScaleOverlay(const Topology& topology, const SfcCatalog& sfcs,
                   WorkloadOptions options, std::unique_ptr<WorkloadModel> inner,
                   double factor);
  RateScaleOverlay(const RateScaleOverlay& other);

  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override;
  [[nodiscard]] double peak_total_rate() const override;
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return std::make_unique<RateScaleOverlay>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "rate-scale(" + inner_->name() + ")";
  }

  [[nodiscard]] const WorkloadModel& inner() const noexcept { return *inner_; }
  [[nodiscard]] double factor() const noexcept { return factor_; }

 private:
  std::unique_ptr<WorkloadModel> inner_;
  double factor_ = 1.0;
};

struct HotspotOptions {
  std::uint32_t region = 0;    ///< boosted region (modulo the node count)
  double magnitude = 6.0;      ///< rate multiplier during the hotspot
  double start_s = 600.0;      ///< window opens here
  double duration_s = 1800.0;  ///< window length (one window, not periodic)
};

/// Incast hotspot: ONE fixed region's arrival rate is multiplied during a
/// single time window. Unlike FlashCrowdOverlay the epicentre never rotates
/// and never spreads — the point is to drive sustained load (and, under the
/// flow network model, link contention) into one rack's uplinks.
class HotspotOverlay final : public PoissonArrivalModel {
 public:
  HotspotOverlay(const Topology& topology, const SfcCatalog& sfcs,
                 WorkloadOptions options, std::unique_ptr<WorkloadModel> inner,
                 HotspotOptions hotspot = {});
  HotspotOverlay(const HotspotOverlay& other);

  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override;
  [[nodiscard]] double peak_total_rate() const override;
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return std::make_unique<HotspotOverlay>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "incast(" + inner_->name() + ")";
  }

  [[nodiscard]] const WorkloadModel& inner() const noexcept { return *inner_; }
  [[nodiscard]] const HotspotOptions& hotspot_options() const noexcept {
    return hotspot_;
  }
  [[nodiscard]] NodeId hotspot_region() const noexcept { return region_; }

 private:
  std::unique_ptr<WorkloadModel> inner_;
  HotspotOptions hotspot_;
  NodeId region_{};  ///< hotspot_.region reduced modulo the node count
};

/// Records the stream of any inner model to a CSV replayable by
/// TraceReplayModel (header offset_s,region,sfc,rate_rps,duration_s; one row
/// per generated request, offset = absolute arrival time, flushed per row).
/// All queries delegate to the inner model, so the wrapped stream is
/// bit-identical to the unwrapped one. clone() returns a clone of the inner
/// model WITHOUT recording — cloned streams (actor threads, serving
/// partitions) would interleave rows non-deterministically in one file.
class TraceRecordingModel final : public WorkloadModel {
 public:
  /// Opens `path` truncating; throws std::runtime_error if it cannot.
  TraceRecordingModel(std::unique_ptr<WorkloadModel> inner, const std::string& path);

  [[nodiscard]] Request next(SimTime now) override;
  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override {
    return inner_->region_rate(region, t);
  }
  [[nodiscard]] double total_rate(SimTime t) const override {
    return inner_->total_rate(t);
  }
  [[nodiscard]] double peak_total_rate() const override {
    return inner_->peak_total_rate();
  }
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return inner_->clone();
  }
  [[nodiscard]] std::string name() const override {
    return "trace-recording(" + inner_->name() + ")";
  }
  [[nodiscard]] const WorkloadOptions& options() const override {
    return inner_->options();
  }
  [[nodiscard]] std::uint64_t generated_count() const override {
    return inner_->generated_count();
  }

  [[nodiscard]] const WorkloadModel& inner() const noexcept { return *inner_; }
  [[nodiscard]] std::uint64_t rows_recorded() const noexcept { return rows_; }

 private:
  std::unique_ptr<WorkloadModel> inner_;
  std::shared_ptr<std::ofstream> out_;
  std::uint64_t rows_ = 0;
};

/// Wraps `inner` (empty = Poisson-diurnal) with a flash-crowd overlay.
[[nodiscard]] WorkloadModelFactory flash_crowd_factory(WorkloadModelFactory inner,
                                                       FlashCrowdOptions burst = {});

/// Wraps `inner` (empty = Poisson-diurnal) with a rate-scale overlay.
[[nodiscard]] WorkloadModelFactory rate_scale_factory(WorkloadModelFactory inner,
                                                      double factor);

/// Wraps `inner` (empty = Poisson-diurnal) with an incast hotspot overlay.
[[nodiscard]] WorkloadModelFactory hotspot_factory(WorkloadModelFactory inner,
                                                   HotspotOptions hotspot = {});

}  // namespace vnfm::edgesim
