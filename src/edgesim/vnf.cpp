#include "edgesim/vnf.hpp"

#include <algorithm>
#include <stdexcept>

namespace vnfm::edgesim {

VnfCatalog::VnfCatalog(std::vector<VnfType> types) : types_(std::move(types)) {
  if (types_.empty()) throw std::invalid_argument("empty VNF catalog");
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (index(types_[i].id) != i)
      throw std::invalid_argument("VNF catalog ids must be dense and ordered");
  }
}

VnfCatalog VnfCatalog::standard() {
  std::vector<VnfType> types;
  auto add = [&types](std::string name, double cpu, double mem, double cap, double delay,
                      double deploy, double run) {
    VnfType t;
    t.id = VnfTypeId{static_cast<std::uint32_t>(types.size())};
    t.name = std::move(name);
    t.cpu_units = cpu;
    t.mem_gb = mem;
    t.capacity_rps = cap;
    t.proc_delay_ms = delay;
    t.deploy_cost = deploy;
    t.run_cost_per_hour = run;
    types.push_back(std::move(t));
  };
  //    name        cpu  mem   cap    delay  deploy run/h
  add("firewall",   2.0, 2.0, 150.0, 0.40,  1.0,   0.30);
  add("nat",        1.0, 1.0, 200.0, 0.20,  0.6,   0.15);
  add("ids",        4.0, 4.0,  80.0, 1.20,  1.8,   0.60);
  add("lb",         1.0, 2.0, 250.0, 0.15,  0.6,   0.15);
  add("wan_opt",    3.0, 4.0, 100.0, 0.80,  1.4,   0.45);
  add("vpn",        2.0, 2.0, 120.0, 0.60,  1.0,   0.35);
  return VnfCatalog(std::move(types));
}

const VnfType& VnfCatalog::type(VnfTypeId id) const {
  return types_.at(index(id));
}

const VnfType& VnfCatalog::by_name(const std::string& name) const {
  const auto it = std::find_if(types_.begin(), types_.end(),
                               [&name](const VnfType& t) { return t.name == name; });
  if (it == types_.end()) throw std::out_of_range("unknown VNF type: " + name);
  return *it;
}

SfcCatalog::SfcCatalog(std::vector<SfcTemplate> templates) : templates_(std::move(templates)) {
  if (templates_.empty()) throw std::invalid_argument("empty SFC catalog");
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (index(templates_[i].id) != i)
      throw std::invalid_argument("SFC catalog ids must be dense and ordered");
    if (templates_[i].chain.empty())
      throw std::invalid_argument("SFC template with empty chain");
  }
}

SfcCatalog SfcCatalog::standard(const VnfCatalog& vnfs) {
  std::vector<SfcTemplate> templates;
  auto chain_of = [&vnfs](std::initializer_list<const char*> names) {
    std::vector<VnfTypeId> chain;
    for (const char* n : names) chain.push_back(vnfs.by_name(n).id);
    return chain;
  };
  auto add = [&templates](std::string name, std::vector<VnfTypeId> chain, double sla,
                          double rate, double duration, double revenue) {
    SfcTemplate t;
    t.id = SfcId{static_cast<std::uint32_t>(templates.size())};
    t.name = std::move(name);
    t.chain = std::move(chain);
    t.sla_latency_ms = sla;
    t.mean_rate_rps = rate;
    t.mean_duration_s = duration;
    t.revenue = revenue;
    templates.push_back(std::move(t));
  };
  //   name       chain                              sla(ms) rate  dur(s) revenue
  add("web",      chain_of({"nat", "firewall", "lb"}),      120.0, 6.0, 240.0, 2.0);
  add("voip",     chain_of({"nat", "firewall"}),             80.0, 2.0, 420.0, 1.5);
  add("video",    chain_of({"firewall", "ids", "wan_opt"}), 150.0, 10.0, 600.0, 3.0);
  add("gaming",   chain_of({"nat", "firewall", "ids"}),      60.0, 4.0, 360.0, 2.5);
  add("iot",      chain_of({"firewall", "ids"}),            200.0, 1.0, 900.0, 1.0);
  return SfcCatalog(std::move(templates));
}

const SfcTemplate& SfcCatalog::sfc(SfcId id) const { return templates_.at(index(id)); }

const SfcTemplate& SfcCatalog::by_name(const std::string& name) const {
  const auto it = std::find_if(templates_.begin(), templates_.end(),
                               [&name](const SfcTemplate& t) { return t.name == name; });
  if (it == templates_.end()) throw std::out_of_range("unknown SFC: " + name);
  return *it;
}

std::size_t SfcCatalog::max_chain_length() const noexcept {
  std::size_t longest = 0;
  for (const auto& t : templates_) longest = std::max(longest, t.chain.size());
  return longest;
}

}  // namespace vnfm::edgesim
