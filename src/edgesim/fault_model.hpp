// Generative fault processes: seed-derived failure/repair event streams,
// the stochastic counterpart of the scripted EventSchedule.
//
// A FaultModel emits ScheduledEvents on demand (next_time() / pop()) in
// non-decreasing time order. core::VnfEnv merges the generated stream with
// its scripted EventSchedule in deterministic timestamp order (scripted
// events first on ties) and applies both exactly where scripted events are
// applied today — between request arrivals at fixed simulated instants.
//
//  - MtbfFaultModel   independent per-node failure/repair renewal processes:
//                     up-times ~ Exp(mean mtbf_s), down-times ~ Exp(mean
//                     mttr_s), each node on its own seed-derived RNG stream
//                     so the composed stream never depends on interleaving.
//  - RackFaultModel   rack-correlated failures: one draw downs a whole rack —
//                     either every host of the rack fail-stop (kHosts) or the
//                     rack's ToR uplinks via kLinkFailure (kUplinks, the PR 8
//                     plumbing; a no-op under the constant network model).
//  - LinkFlapModel    per-rack uplink flap processes with BOUNDED repair
//                     times: down-time = min(Exp(mttr_s), down_cap_s), so a
//                     flapping uplink is always back within the cap.
//  - CompositeFaultModel  merges child streams in (time, child index) order.
//
// Determinism contract: a model built twice from the same (topology, context,
// options) emits byte-identical event streams; event times are derived only
// from per-entity RNG streams seeded by mixing (context.seed, fault_seed,
// entity index), never from consumption order, thread ids, or wall clock.
//
// A FaultModelFactory is how environments own models: core::EnvOptions
// carries a factory (copyable, so options still copy across actor and
// evaluator threads) and VnfEnv invokes it on every reset with the
// episode-derived fault stream seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "edgesim/events.hpp"
#include "edgesim/topology.hpp"

namespace vnfm::edgesim {

/// Per-reset inputs a fault-model factory receives from the environment:
/// the episode-derived stream seed plus the fabric's rack width (so
/// rack-correlated models group hosts exactly like the two-tier fabric).
struct FaultContext {
  std::uint64_t seed = 0;      ///< episode-derived fault stream seed
  std::size_t rack_size = 4;   ///< hosts per rack (NetworkOptions::flow)
};

/// Abstract generative fault process. Implementations emit a deterministic,
/// time-ordered (non-decreasing) event stream derived only from their seed.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Simulated time of the next event the process will emit; infinity when
  /// the stream is exhausted (the built-in processes never exhaust).
  [[nodiscard]] virtual SimTime next_time() const = 0;

  /// Emits the next event and advances the stream. Precondition: next_time()
  /// is finite.
  virtual ScheduledEvent pop() = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Events emitted (pop() calls) so far.
  [[nodiscard]] virtual std::uint64_t emitted_count() const = 0;
};

/// Builds a fault model for a freshly reset environment. `context.seed` is
/// already the episode-derived fault stream seed. An empty factory means no
/// generated faults (legacy behaviour, byte-identical).
using FaultModelFactory = std::function<std::unique_ptr<FaultModel>(
    const Topology& topology, const FaultContext& context)>;

struct MtbfFaultOptions {
  double mtbf_s = 4.0 * 3600.0;  ///< mean up-time between failures
  double mttr_s = 600.0;         ///< mean down-time until repair
  /// Extra stream selector mixed into the episode seed: two overlays with
  /// different fault_seed values draw disjoint streams on the same episode.
  std::uint64_t fault_seed = 0;
};

/// Independent per-node failure/repair renewal processes. Node i alternates
/// up-times ~ Exp(mean mtbf_s) and down-times ~ Exp(mean mttr_s) on its own
/// RNG stream seeded from (context.seed, fault_seed, i); events are emitted
/// in (time, node) order via a binary heap.
class MtbfFaultModel final : public FaultModel {
 public:
  MtbfFaultModel(const Topology& topology, const FaultContext& context,
                 MtbfFaultOptions options);

  [[nodiscard]] SimTime next_time() const override;
  ScheduledEvent pop() override;
  [[nodiscard]] std::string name() const override { return "mtbf-faults"; }
  [[nodiscard]] std::uint64_t emitted_count() const noexcept override {
    return emitted_;
  }

  [[nodiscard]] const MtbfFaultOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    SimTime time_s = 0.0;
    std::uint32_t node = 0;
  };
  static bool later(const Pending& a, const Pending& b) noexcept;

  MtbfFaultOptions options_;
  std::vector<Rng> rng_;           ///< per node
  std::vector<std::uint8_t> down_; ///< per node: next event is a recovery
  std::vector<Pending> heap_;      ///< min-heap on (time, node)
  std::uint64_t emitted_ = 0;
};

/// What one rack-failure draw takes down.
enum class RackFaultMode : std::uint8_t {
  kHosts,    ///< fail-stop every host of the rack (constant-model friendly)
  kUplinks,  ///< fail the rack's ToR uplinks (kLinkFailure; flow models only)
};

struct RackFaultOptions {
  double mtbf_s = 12.0 * 3600.0;  ///< mean up-time per rack
  double mttr_s = 900.0;          ///< mean down-time per rack
  std::uint64_t fault_seed = 0;   ///< extra stream selector (see MtbfFaultOptions)
  RackFaultMode mode = RackFaultMode::kHosts;
  /// Hosts per rack; 0 = inherit FaultContext::rack_size (the fabric width).
  std::size_t rack_size = 0;
};

/// Rack-correlated failure/repair processes: racks are contiguous host-index
/// groups of rack_size (exactly the two-tier fabric's assignment). One draw
/// downs the whole rack — every host transitions at the same instant
/// (kHosts), or the rack's ToR uplink fails via the anchor host (kUplinks).
class RackFaultModel final : public FaultModel {
 public:
  RackFaultModel(const Topology& topology, const FaultContext& context,
                 RackFaultOptions options);

  [[nodiscard]] SimTime next_time() const override;
  ScheduledEvent pop() override;
  [[nodiscard]] std::string name() const override { return "rack-faults"; }
  [[nodiscard]] std::uint64_t emitted_count() const noexcept override {
    return emitted_;
  }

  [[nodiscard]] const RackFaultOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t rack_count() const noexcept { return rng_.size(); }
  /// First host index of rack `rack` (its uplink-failure anchor).
  [[nodiscard]] std::uint32_t rack_anchor(std::size_t rack) const;

 private:
  struct Pending {
    SimTime time_s = 0.0;
    std::uint32_t rack = 0;
  };
  static bool later(const Pending& a, const Pending& b) noexcept;
  /// Expands the earliest rack transition into per-host (or uplink) events.
  void refill_queue();

  RackFaultOptions options_;
  std::size_t host_count_ = 0;
  std::vector<Rng> rng_;           ///< per rack
  std::vector<std::uint8_t> down_; ///< per rack
  std::vector<Pending> heap_;      ///< min-heap on (time, rack)
  std::deque<ScheduledEvent> queue_;  ///< expanded events awaiting pop()
  std::uint64_t emitted_ = 0;
};

struct LinkFlapOptions {
  double mtbf_s = 2.0 * 3600.0;  ///< mean up-time between flaps per rack uplink
  double mttr_s = 120.0;         ///< mean down-time of one flap
  double down_cap_s = 600.0;     ///< hard bound on any single down-time
  std::uint64_t fault_seed = 0;  ///< extra stream selector (see MtbfFaultOptions)
  /// Racks per flap process; 0 = inherit FaultContext::rack_size.
  std::size_t rack_size = 0;
};

/// Per-rack uplink flap processes with bounded repair: each rack's uplink
/// alternates up-times ~ Exp(mean mtbf_s) and down-times min(Exp(mean
/// mttr_s), down_cap_s), emitting kLinkFailure/kLinkRecovery anchored at the
/// rack's first host. A no-op stream under the constant network model (link
/// events don't apply there), real rerouting/kills under flow fabrics.
class LinkFlapModel final : public FaultModel {
 public:
  LinkFlapModel(const Topology& topology, const FaultContext& context,
                LinkFlapOptions options);

  [[nodiscard]] SimTime next_time() const override;
  ScheduledEvent pop() override;
  [[nodiscard]] std::string name() const override { return "link-flaps"; }
  [[nodiscard]] std::uint64_t emitted_count() const noexcept override {
    return emitted_;
  }

  [[nodiscard]] const LinkFlapOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t rack_count() const noexcept { return rng_.size(); }

 private:
  struct Pending {
    SimTime time_s = 0.0;
    std::uint32_t rack = 0;
  };
  static bool later(const Pending& a, const Pending& b) noexcept;

  LinkFlapOptions options_;
  std::size_t rack_size_ = 4;
  std::vector<Rng> rng_;           ///< per rack
  std::vector<std::uint8_t> down_; ///< per rack
  std::vector<Pending> heap_;      ///< min-heap on (time, rack)
  std::uint64_t emitted_ = 0;
};

/// Deterministic merge of several fault processes: the earliest child event
/// wins, ties broken by child index (registration order).
class CompositeFaultModel final : public FaultModel {
 public:
  explicit CompositeFaultModel(std::vector<std::unique_ptr<FaultModel>> children);

  [[nodiscard]] SimTime next_time() const override;
  ScheduledEvent pop() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t emitted_count() const noexcept override {
    return emitted_;
  }

  [[nodiscard]] std::size_t child_count() const noexcept { return children_.size(); }

 private:
  std::vector<std::unique_ptr<FaultModel>> children_;
  std::uint64_t emitted_ = 0;
};

/// Factory for per-node MTBF/MTTR failure/repair processes.
[[nodiscard]] FaultModelFactory mtbf_fault_factory(MtbfFaultOptions options = {});

/// Factory for rack-correlated failure/repair processes.
[[nodiscard]] FaultModelFactory rack_fault_factory(RackFaultOptions options = {});

/// Factory for bounded-repair link-flap processes.
[[nodiscard]] FaultModelFactory link_flap_factory(LinkFlapOptions options = {});

/// Composes two factories into one emitting the merged stream (empty inner =
/// just `outer`; scenario overlays chain fault processes through this).
[[nodiscard]] FaultModelFactory compose_fault_factories(FaultModelFactory inner,
                                                        FaultModelFactory outer);

/// Drains up to `max_events` events with time <= horizon_s from a fresh model
/// into a time-ordered vector (tests, stream comparisons, trace dumps).
[[nodiscard]] std::vector<ScheduledEvent> drain_fault_stream(FaultModel& model,
                                                             SimTime horizon_s,
                                                             std::size_t max_events);

}  // namespace vnfm::edgesim
