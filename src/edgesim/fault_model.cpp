#include "edgesim/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace vnfm::edgesim {

namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

// Stream-selector tags: composed models built from the same episode seed and
// the same fault_seed still draw disjoint per-entity streams.
constexpr std::uint64_t kMtbfTag = 0x6D74626621ULL;   // "mtbf!"
constexpr std::uint64_t kRackTag = 0x7261636B21ULL;   // "rack!"
constexpr std::uint64_t kFlapTag = 0x666C617021ULL;   // "flap!"

/// SplitMix64 finalizer: the per-entity seed mixer. Entity streams must be
/// independent of consumption order, so every stream seed is a pure function
/// of (episode seed, fault_seed, tag, entity index).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t entity_seed(const FaultContext& context, std::uint64_t fault_seed,
                          std::uint64_t tag, std::uint64_t entity) noexcept {
  return mix64(context.seed ^ mix64(fault_seed ^ tag) ^ mix64(entity * 0x9E3779B97F4A7C15ULL));
}

void check_positive(double value, const char* what) {
  if (!(value > 0.0) || !std::isfinite(value))
    throw std::invalid_argument(std::string(what) + " must be positive and finite");
}

std::size_t resolve_rack_size(std::size_t option, const FaultContext& context) {
  const std::size_t size = option > 0 ? option : context.rack_size;
  if (size == 0) throw std::invalid_argument("rack size must be >= 1");
  return size;
}

}  // namespace

// ---- MtbfFaultModel ---------------------------------------------------------

bool MtbfFaultModel::later(const Pending& a, const Pending& b) noexcept {
  // std::push_heap builds a max-heap; invert for earliest-(time, node)-first.
  if (a.time_s != b.time_s) return a.time_s > b.time_s;
  return a.node > b.node;
}

MtbfFaultModel::MtbfFaultModel(const Topology& topology, const FaultContext& context,
                               MtbfFaultOptions options)
    : options_(options) {
  check_positive(options_.mtbf_s, "mtbf_s");
  check_positive(options_.mttr_s, "mttr_s");
  const std::size_t n = topology.node_count();
  rng_.reserve(n);
  down_.assign(n, 0);
  heap_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rng_.emplace_back(entity_seed(context, options_.fault_seed, kMtbfTag, i));
    // First failure after one full up-time from t = 0.
    heap_.push_back({rng_.back().exponential(1.0 / options_.mtbf_s),
                     static_cast<std::uint32_t>(i)});
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

SimTime MtbfFaultModel::next_time() const {
  return heap_.empty() ? kNever : heap_.front().time_s;
}

ScheduledEvent MtbfFaultModel::pop() {
  if (heap_.empty()) throw std::logic_error("pop() on an exhausted fault stream");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Pending p = heap_.back();
  heap_.pop_back();
  const NodeId node{p.node};
  ScheduledEvent event;
  event.time_s = p.time_s;
  event.node = node;
  double next_delay = 0.0;
  if (down_[p.node] == 0) {
    event.kind = EventKind::kNodeFailure;
    down_[p.node] = 1;
    next_delay = rng_[p.node].exponential(1.0 / options_.mttr_s);
  } else {
    event.kind = EventKind::kNodeRecovery;
    down_[p.node] = 0;
    next_delay = rng_[p.node].exponential(1.0 / options_.mtbf_s);
  }
  heap_.push_back({p.time_s + next_delay, p.node});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++emitted_;
  return event;
}

// ---- RackFaultModel ---------------------------------------------------------

bool RackFaultModel::later(const Pending& a, const Pending& b) noexcept {
  if (a.time_s != b.time_s) return a.time_s > b.time_s;
  return a.rack > b.rack;
}

RackFaultModel::RackFaultModel(const Topology& topology, const FaultContext& context,
                               RackFaultOptions options)
    : options_(options), host_count_(topology.node_count()) {
  check_positive(options_.mtbf_s, "mtbf_s");
  check_positive(options_.mttr_s, "mttr_s");
  options_.rack_size = resolve_rack_size(options_.rack_size, context);
  const std::size_t racks =
      (host_count_ + options_.rack_size - 1) / options_.rack_size;
  rng_.reserve(racks);
  down_.assign(racks, 0);
  heap_.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    rng_.emplace_back(entity_seed(context, options_.fault_seed, kRackTag, r));
    heap_.push_back({rng_.back().exponential(1.0 / options_.mtbf_s),
                     static_cast<std::uint32_t>(r)});
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

std::uint32_t RackFaultModel::rack_anchor(std::size_t rack) const {
  return static_cast<std::uint32_t>(rack * options_.rack_size);
}

SimTime RackFaultModel::next_time() const {
  if (!queue_.empty()) return queue_.front().time_s;
  return heap_.empty() ? kNever : heap_.front().time_s;
}

void RackFaultModel::refill_queue() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Pending p = heap_.back();
  heap_.pop_back();
  const bool failing = down_[p.rack] == 0;
  down_[p.rack] = failing ? 1 : 0;
  const double next_delay = failing ? rng_[p.rack].exponential(1.0 / options_.mttr_s)
                                    : rng_[p.rack].exponential(1.0 / options_.mtbf_s);
  heap_.push_back({p.time_s + next_delay, p.rack});
  std::push_heap(heap_.begin(), heap_.end(), later);

  if (options_.mode == RackFaultMode::kUplinks) {
    // One event per transition: the anchor host names the rack whose ToR
    // uplinks fail/recover (ClusterState::fail_rack_uplink plumbing).
    queue_.push_back({.time_s = p.time_s,
                      .kind = failing ? EventKind::kLinkFailure
                                      : EventKind::kLinkRecovery,
                      .node = NodeId{rack_anchor(p.rack)}});
    return;
  }
  // Whole-rack host transition: every host of the rack at the same instant,
  // ascending host id — the correlation the statistical suite asserts.
  const std::size_t first = p.rack * options_.rack_size;
  const std::size_t last = std::min(first + options_.rack_size, host_count_);
  for (std::size_t h = first; h < last; ++h)
    queue_.push_back({.time_s = p.time_s,
                      .kind = failing ? EventKind::kNodeFailure
                                      : EventKind::kNodeRecovery,
                      .node = NodeId{static_cast<std::uint32_t>(h)}});
}

ScheduledEvent RackFaultModel::pop() {
  if (queue_.empty()) {
    if (heap_.empty()) throw std::logic_error("pop() on an exhausted fault stream");
    refill_queue();
  }
  const ScheduledEvent event = queue_.front();
  queue_.pop_front();
  ++emitted_;
  return event;
}

// ---- LinkFlapModel ----------------------------------------------------------

bool LinkFlapModel::later(const Pending& a, const Pending& b) noexcept {
  if (a.time_s != b.time_s) return a.time_s > b.time_s;
  return a.rack > b.rack;
}

LinkFlapModel::LinkFlapModel(const Topology& topology, const FaultContext& context,
                             LinkFlapOptions options)
    : options_(options) {
  check_positive(options_.mtbf_s, "mtbf_s");
  check_positive(options_.mttr_s, "mttr_s");
  check_positive(options_.down_cap_s, "down_cap_s");
  rack_size_ = resolve_rack_size(options_.rack_size, context);
  const std::size_t racks = (topology.node_count() + rack_size_ - 1) / rack_size_;
  rng_.reserve(racks);
  down_.assign(racks, 0);
  heap_.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    rng_.emplace_back(entity_seed(context, options_.fault_seed, kFlapTag, r));
    heap_.push_back({rng_.back().exponential(1.0 / options_.mtbf_s),
                     static_cast<std::uint32_t>(r)});
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

SimTime LinkFlapModel::next_time() const {
  return heap_.empty() ? kNever : heap_.front().time_s;
}

ScheduledEvent LinkFlapModel::pop() {
  if (heap_.empty()) throw std::logic_error("pop() on an exhausted fault stream");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Pending p = heap_.back();
  heap_.pop_back();
  ScheduledEvent event;
  event.time_s = p.time_s;
  event.node = NodeId{static_cast<std::uint32_t>(p.rack * rack_size_)};
  double next_delay = 0.0;
  if (down_[p.rack] == 0) {
    event.kind = EventKind::kLinkFailure;
    down_[p.rack] = 1;
    // Bounded repair: a flap is always over within down_cap_s.
    next_delay =
        std::min(rng_[p.rack].exponential(1.0 / options_.mttr_s), options_.down_cap_s);
  } else {
    event.kind = EventKind::kLinkRecovery;
    down_[p.rack] = 0;
    next_delay = rng_[p.rack].exponential(1.0 / options_.mtbf_s);
  }
  heap_.push_back({p.time_s + next_delay, p.rack});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++emitted_;
  return event;
}

// ---- CompositeFaultModel ----------------------------------------------------

CompositeFaultModel::CompositeFaultModel(
    std::vector<std::unique_ptr<FaultModel>> children)
    : children_(std::move(children)) {
  for (const auto& child : children_)
    if (!child) throw std::invalid_argument("composite fault model child is null");
}

SimTime CompositeFaultModel::next_time() const {
  SimTime earliest = kNever;
  for (const auto& child : children_) earliest = std::min(earliest, child->next_time());
  return earliest;
}

ScheduledEvent CompositeFaultModel::pop() {
  FaultModel* winner = nullptr;
  SimTime earliest = kNever;
  // Ties break toward the lowest child index (strict <): registration order.
  for (const auto& child : children_) {
    const SimTime t = child->next_time();
    if (t < earliest) {
      earliest = t;
      winner = child.get();
    }
  }
  if (winner == nullptr)
    throw std::logic_error("pop() on an exhausted fault stream");
  ++emitted_;
  return winner->pop();
}

std::string CompositeFaultModel::name() const {
  std::string out = "composite(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += "+";
    out += children_[i]->name();
  }
  return out + ")";
}

// ---- Factories --------------------------------------------------------------

FaultModelFactory mtbf_fault_factory(MtbfFaultOptions options) {
  return [options](const Topology& topology, const FaultContext& context) {
    return std::make_unique<MtbfFaultModel>(topology, context, options);
  };
}

FaultModelFactory rack_fault_factory(RackFaultOptions options) {
  return [options](const Topology& topology, const FaultContext& context) {
    return std::make_unique<RackFaultModel>(topology, context, options);
  };
}

FaultModelFactory link_flap_factory(LinkFlapOptions options) {
  return [options](const Topology& topology, const FaultContext& context) {
    return std::make_unique<LinkFlapModel>(topology, context, options);
  };
}

FaultModelFactory compose_fault_factories(FaultModelFactory inner,
                                          FaultModelFactory outer) {
  if (!outer) return inner;
  if (!inner) return outer;
  return [inner = std::move(inner), outer = std::move(outer)](
             const Topology& topology, const FaultContext& context) {
    std::vector<std::unique_ptr<FaultModel>> children;
    children.push_back(inner(topology, context));
    children.push_back(outer(topology, context));
    return std::make_unique<CompositeFaultModel>(std::move(children));
  };
}

std::vector<ScheduledEvent> drain_fault_stream(FaultModel& model, SimTime horizon_s,
                                               std::size_t max_events) {
  std::vector<ScheduledEvent> out;
  while (out.size() < max_events && model.next_time() <= horizon_s)
    out.push_back(model.pop());
  return out;
}

}  // namespace vnfm::edgesim
