#include "edgesim/metrics.hpp"

#include <sstream>

namespace vnfm::edgesim {

MetricsCollector::MetricsCollector(CostModel cost_model)
    : cost_model_(cost_model), latency_sketch_(100'000) {}

void MetricsCollector::on_arrival() { ++arrivals_; }

void MetricsCollector::on_accept(const ChainPlacement& placement,
                                 double deploy_cost_total, double revenue) {
  ++accepted_;
  deployments_ += static_cast<std::uint64_t>(placement.new_deployments);
  if (placement.sla_violated()) ++sla_violations_;
  latency_.add(placement.latency_ms);
  latency_sketch_.add(placement.latency_ms);
  deploy_cost_ += deploy_cost_total;
  revenue_ += revenue;
  total_cost_ += cost_model_.admission_cost(placement, deploy_cost_total, revenue);
}

void MetricsCollector::on_reject() {
  ++rejected_;
  total_cost_ += cost_model_.rejection_cost();
}

void MetricsCollector::on_migrations(std::size_t count) {
  migrations_ += count;
  total_cost_ += cost_model_.migration_cost(count);
}

void MetricsCollector::on_chains_killed(std::size_t count) {
  chains_killed_ += count;
  total_cost_ += cost_model_.interruption_cost(count);
}

void MetricsCollector::on_running_cost(double raw_running_cost) {
  running_cost_ += raw_running_cost;
  total_cost_ += cost_model_.running_cost(raw_running_cost);
}

void MetricsCollector::sample_utilization(const ClusterState& cluster) {
  for (const auto& node : cluster.topology().nodes())
    utilization_.add(cluster.cpu_utilization(node.id));
}

double MetricsCollector::acceptance_ratio() const noexcept {
  return arrivals_ == 0
             ? 1.0
             : static_cast<double>(accepted_) / static_cast<double>(arrivals_);
}

double MetricsCollector::sla_violation_ratio() const noexcept {
  return accepted_ == 0
             ? 0.0
             : static_cast<double>(sla_violations_) / static_cast<double>(accepted_);
}

double MetricsCollector::cost_per_request() const noexcept {
  return arrivals_ == 0 ? 0.0 : total_cost_ / static_cast<double>(arrivals_);
}

std::string MetricsCollector::summary() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals_ << " accepted=" << accepted_
     << " rejected=" << rejected_ << " accept_ratio=" << acceptance_ratio()
     << " mean_latency_ms=" << latency_.mean()
     << " sla_violation_ratio=" << sla_violation_ratio()
     << " deployments=" << deployments_ << " total_cost=" << total_cost_
     << " cost_per_request=" << cost_per_request();
  return os.str();
}

}  // namespace vnfm::edgesim
