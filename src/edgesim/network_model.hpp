// Polymorphic network model: the latency a chain hop experiences, as a
// subsystem alongside WorkloadModel.
//
//  - ConstantLatencyModel  wraps the Topology's geographic LatencyModel
//                          verbatim — the default, bit-identical to the
//                          pre-NetworkModel behaviour on every scenario.
//  - FlowNetworkModel      explicit racks/ToRs/links (link.hpp): every chain
//                          hop is a Flow routed over the fabric, throughput
//                          comes from iterative max-min fair sharing of link
//                          capacity, and hop latency = route propagation +
//                          payload transfer at the allocated bandwidth — so
//                          chain latency and SLA violations emerge from
//                          actual contention instead of constants.
//
// Allocation is recomputed incrementally: adding/removing/rerouting a flow
// marks its links dirty, the recompute closes over the flow<->link component
// reachable from the dirty links, and water-fills only that component.
// Components are link-disjoint from the rest of the flow table, so the
// restricted recompute equals the global max-min allocation — the O(dirty)
// discipline of the incremental cluster state carries over to the network.
//
// ClusterState owns one NetworkModel and routes every latency/routability
// query through it; core::EnvOptions carries a copyable NetworkOptions value
// (plus an optional factory override) that VnfEnv turns into a model on
// every reset.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edgesim/link.hpp"
#include "edgesim/topology.hpp"

namespace vnfm::edgesim {

/// Identity of one registered flow: the owning chain request plus the hop
/// index within it (0 = user access hop, i >= 1 = the hop into chain
/// position i, chain length = the return hop to the user).
struct FlowKey {
  RequestId request{};
  std::uint32_t hop = 0;

  auto operator<=>(const FlowKey&) const = default;
};

/// Abstract network: latency queries plus a flow lifecycle. The constant
/// model ignores flows entirely; the flow model shares bandwidth among them.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  // ---- Stateless latency probes (features, chain-latency recomputation) ---
  /// Latency of a hop between two nodes under current conditions, without
  /// registering anything. Constant model: Topology::latency_ms verbatim.
  [[nodiscard]] virtual double hop_latency_ms(NodeId a, NodeId b) const = 0;
  /// Latency from a user in `region`'s metro to `target`, without
  /// registering anything. Constant model: Topology::user_latency_ms.
  [[nodiscard]] virtual double user_latency_ms(NodeId region, NodeId target) const = 0;

  // ---- Flow lifecycle (no-ops returning the probe in the constant model) --
  /// Registers the inter-node hop `a -> b` of a chain and returns the hop
  /// latency the chain is charged (flow model: after re-sharing bandwidth).
  virtual double add_flow(FlowKey key, NodeId a, NodeId b, double rate_rps) = 0;
  /// Registers the user access hop (user in `region` -> `first`).
  virtual double add_access_flow(FlowKey key, NodeId region, NodeId first,
                                 double rate_rps) = 0;
  /// Registers the return hop (`last` -> user in `region`).
  virtual double add_return_flow(FlowKey key, NodeId last, NodeId region,
                                 double rate_rps) = 0;
  /// Retires a flow (no-op if the key is unknown, so teardown paths can be
  /// uniform across models and partially placed chains).
  virtual void remove_flow(FlowKey key) = 0;

  // ---- Routability and faults ---------------------------------------------
  /// True when traffic can currently be routed between the two nodes
  /// (constant model: always). Placement masks AND this into can_link.
  [[nodiscard]] virtual bool can_route(NodeId a, NodeId b) const = 0;
  /// Rack-correlated link failure: fails the first non-failed uplink pair of
  /// the ToR/edge switch serving `anchor`'s rack, reroutes crossing flows
  /// where the fabric still has a path, and returns the keys of flows left
  /// with no route (the caller kills their chains, fail-stop). Constant
  /// model: no fabric, returns empty.
  virtual std::vector<FlowKey> fail_link_at(NodeId anchor) = 0;
  /// Recovers every failed uplink of `anchor`'s rack (existing flows keep
  /// their current routes; new and rerouted flows see the recovered links).
  virtual void recover_link_at(NodeId anchor) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t active_flow_count() const = 0;
};

/// The legacy behaviour as a NetworkModel: every query delegates to the
/// Topology's geographic latency model, flows are not tracked, links do not
/// exist. Bit-identical to the pre-NetworkModel code paths by construction.
class ConstantLatencyModel final : public NetworkModel {
 public:
  explicit ConstantLatencyModel(const Topology& topology) : topology_(topology) {}

  [[nodiscard]] double hop_latency_ms(NodeId a, NodeId b) const override {
    return topology_.latency_ms(a, b);
  }
  [[nodiscard]] double user_latency_ms(NodeId region, NodeId target) const override {
    return topology_.user_latency_ms(region, target);
  }
  double add_flow(FlowKey, NodeId a, NodeId b, double) override {
    return topology_.latency_ms(a, b);
  }
  double add_access_flow(FlowKey, NodeId region, NodeId first, double) override {
    return topology_.user_latency_ms(region, first);
  }
  double add_return_flow(FlowKey, NodeId last, NodeId region, double) override {
    return topology_.user_latency_ms(region, last);
  }
  void remove_flow(FlowKey) override {}
  [[nodiscard]] bool can_route(NodeId, NodeId) const override { return true; }
  std::vector<FlowKey> fail_link_at(NodeId) override { return {}; }
  void recover_link_at(NodeId) override {}
  [[nodiscard]] std::string name() const override { return "constant-latency"; }
  [[nodiscard]] std::size_t active_flow_count() const override { return 0; }

 private:
  const Topology& topology_;
};

/// Flow-level model over an explicit fabric. See the file header for the
/// allocation and incremental-recompute contract.
class FlowNetworkModel final : public NetworkModel {
 public:
  /// One registered flow and its current allocation.
  struct Flow {
    std::uint32_t src = 0;           ///< source vertex
    std::uint32_t dst = 0;           ///< destination vertex
    double demand_gbps = 0.0;        ///< cap on the fair share (inf = elastic)
    double alloc_gbps = 0.0;         ///< current max-min allocation
    bool user_hop = false;           ///< charged the last-mile constant
    std::vector<LinkId> links;       ///< current route (empty = same vertex)
  };

  FlowNetworkModel(const Topology& topology, NetworkGraph graph,
                   FlowNetworkOptions options);

  [[nodiscard]] double hop_latency_ms(NodeId a, NodeId b) const override;
  [[nodiscard]] double user_latency_ms(NodeId region, NodeId target) const override;
  double add_flow(FlowKey key, NodeId a, NodeId b, double rate_rps) override;
  double add_access_flow(FlowKey key, NodeId region, NodeId first,
                         double rate_rps) override;
  double add_return_flow(FlowKey key, NodeId last, NodeId region,
                         double rate_rps) override;
  void remove_flow(FlowKey key) override;
  [[nodiscard]] bool can_route(NodeId a, NodeId b) const override;
  std::vector<FlowKey> fail_link_at(NodeId anchor) override;
  void recover_link_at(NodeId anchor) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t active_flow_count() const override {
    return flows_.size();
  }

  // ---- Introspection (tests, benches) -------------------------------------
  [[nodiscard]] const NetworkGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const FlowNetworkOptions& options() const noexcept { return options_; }
  /// Registers a raw vertex-to-vertex flow with an explicit demand cap and
  /// returns its latency — exercises demand-capped water-filling in tests
  /// (chain hops registered via the NetworkModel interface are elastic).
  double add_flow_between(FlowKey key, std::uint32_t src, std::uint32_t dst,
                          double demand_gbps);
  /// Current allocation of a registered flow; throws std::out_of_range on an
  /// unknown key.
  [[nodiscard]] const Flow& flow(FlowKey key) const;
  /// Latency a registered flow currently experiences (propagation + payload
  /// transfer at its allocation, + last mile for user hops).
  [[nodiscard]] double flow_latency_ms(FlowKey key) const;
  /// Sum of allocations crossing a link (diagnostics; recomputed on demand).
  [[nodiscard]] double link_utilization_gbps(LinkId link) const;
  [[nodiscard]] std::size_t failed_link_count() const;

 private:
  /// Registers a flow between two vertices (demand in Gbps, infinity =
  /// elastic), re-shares its component, and returns its latency. User hops
  /// additionally carry the topology's last-mile constant.
  double add_vertex_flow(FlowKey key, std::uint32_t src, std::uint32_t dst,
                         double demand_gbps, bool user_hop);
  /// Re-water-fills every flow<->link connected component that contains one
  /// of `seed_links`, each component independently from zero.
  void reshare_component(const std::vector<LinkId>& seed_links);
  /// Progressive filling of one connected component (sorted links + keys).
  void water_fill(const std::vector<LinkId>& comp_links,
                  const std::vector<FlowKey>& comp_flows);
  [[nodiscard]] const std::vector<LinkId>& cached_route(std::uint32_t src,
                                                        std::uint32_t dst) const;
  [[nodiscard]] double latency_of(const Flow& flow) const;
  [[nodiscard]] double propagation_ms(const std::vector<LinkId>& links) const;
  /// Fair-share estimate for one additional flow over `links` (probes).
  [[nodiscard]] double probe_transfer_ms(const std::vector<LinkId>& links) const;
  void attach(FlowKey key, Flow flow);
  void detach_links(const Flow& flow, FlowKey key);

  const Topology& topology_;
  NetworkGraph graph_;
  FlowNetworkOptions options_;
  std::map<FlowKey, Flow> flows_;  ///< deterministic iteration order
  std::vector<std::uint8_t> failed_;              ///< per LinkId
  std::vector<std::vector<FlowKey>> link_flows_;  ///< sorted keys per link
  /// Route cache keyed by (src, dst) vertex pair; invalidated on any
  /// failure-state change. Routes are pure functions of endpoints + mask, so
  /// the cache can never change results, only cost.
  mutable std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<LinkId>>
      route_cache_;
};

/// Copyable network configuration carried by core::EnvOptions. `topology`
/// selects the model: "constant" (default, bit-identical legacy behaviour),
/// "two-tier-edge", or "fat-tree-k<k>" (e.g. "fat-tree-k4"; k is auto-raised
/// to cover the node count).
struct NetworkOptions {
  std::string topology = "constant";
  FlowNetworkOptions flow;
};

/// Builds a network model for a freshly reset environment. An empty factory
/// means make_network_model over core::EnvOptions::network.
using NetworkModelFactory =
    std::function<std::unique_ptr<NetworkModel>(const Topology& topology)>;

/// Instantiates the model `options` names over `topology`; throws
/// std::invalid_argument on an unknown topology string.
[[nodiscard]] std::unique_ptr<NetworkModel> make_network_model(
    const Topology& topology, const NetworkOptions& options);

/// The explicit factory form of make_network_model (captures a copy of
/// `options`).
[[nodiscard]] NetworkModelFactory network_model_factory(NetworkOptions options);

}  // namespace vnfm::edgesim
