// Aggregated simulation metrics: the quantities the paper's evaluation
// section plots (cost, latency, acceptance ratio, utilisation, deployments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "edgesim/cluster.hpp"
#include "edgesim/cost.hpp"

namespace vnfm::edgesim {

/// Point-in-time + cumulative measurements for one simulation run.
class MetricsCollector {
 public:
  explicit MetricsCollector(CostModel cost_model = {});

  void on_arrival();
  /// Records an admitted chain; `deploy_cost_total` and `revenue` are the
  /// raw catalog prices so the collector can apply the cost model itself.
  void on_accept(const ChainPlacement& placement, double deploy_cost_total,
                 double revenue);
  void on_reject();
  /// Periodic running-cost integration (from ClusterState::drain_running_cost).
  void on_running_cost(double raw_running_cost);
  /// Records live-chain migrations performed by a consolidation pass.
  void on_migrations(std::size_t count);
  /// Records chains killed by a node failure; each is charged the
  /// service-interruption penalty (CostModel::interruption_cost).
  void on_chains_killed(std::size_t count);
  /// Samples node utilisations (called once per decision epoch or slot).
  void sample_utilization(const ClusterState& cluster);

  // ---- Aggregates ---------------------------------------------------------
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t sla_violations() const noexcept { return sla_violations_; }
  [[nodiscard]] std::uint64_t deployments() const noexcept { return deployments_; }
  [[nodiscard]] std::uint64_t migrations() const noexcept { return migrations_; }
  [[nodiscard]] std::uint64_t chains_killed() const noexcept { return chains_killed_; }

  [[nodiscard]] double acceptance_ratio() const noexcept;
  [[nodiscard]] double sla_violation_ratio() const noexcept;
  /// Total objective cost accumulated so far.
  [[nodiscard]] double total_cost() const noexcept { return total_cost_; }
  /// Objective cost per arrival (the paper's headline metric).
  [[nodiscard]] double cost_per_request() const noexcept;
  [[nodiscard]] const RunningStat& latency_stats() const noexcept { return latency_; }
  [[nodiscard]] const QuantileSketch& latency_sketch() const noexcept { return latency_sketch_; }
  [[nodiscard]] const RunningStat& utilization_stats() const noexcept { return utilization_; }
  [[nodiscard]] double running_cost_total() const noexcept { return running_cost_; }
  [[nodiscard]] double deploy_cost_total() const noexcept { return deploy_cost_; }
  [[nodiscard]] double revenue_total() const noexcept { return revenue_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_model_; }

  /// One-line human-readable summary (examples / debugging).
  [[nodiscard]] std::string summary() const;

 private:
  CostModel cost_model_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t sla_violations_ = 0;
  std::uint64_t deployments_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t chains_killed_ = 0;
  double total_cost_ = 0.0;
  double running_cost_ = 0.0;
  double deploy_cost_ = 0.0;
  double revenue_ = 0.0;
  RunningStat latency_;
  QuantileSketch latency_sketch_;
  RunningStat utilization_;
};

}  // namespace vnfm::edgesim
