// REINFORCE with an EWMA baseline (Williams, 1992) over a maskable discrete
// action space. Included as the policy-gradient learning baseline against the
// value-based DQN manager.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/grad_pool.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace vnfm::rl {

struct ReinforceConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden_dims{64, 64};
  float learning_rate = 3e-4F;
  float gamma = 0.98F;
  double grad_clip_norm = 5.0;
  float entropy_bonus = 1e-3F;
  double baseline_alpha = 0.05;  ///< EWMA weight for the return baseline
  std::uint64_t seed = 11;
};

/// Monte-Carlo policy-gradient agent; collects one episode then updates.
class ReinforceAgent {
 public:
  explicit ReinforceAgent(ReinforceConfig config);

  /// Samples an action from the masked softmax policy and records the step.
  [[nodiscard]] int act(std::span<const float> state, std::span<const std::uint8_t> mask);

  /// Greedy (mode of the policy) action for evaluation; not recorded.
  [[nodiscard]] int act_greedy(std::span<const float> state,
                               std::span<const std::uint8_t> mask) const;

  /// Records the reward for the most recent act().
  void record_reward(float reward);

  /// Ends the episode: computes returns, applies one gradient step, clears
  /// the trajectory. Returns the (pre-baseline) episode return.
  double finish_episode();

  /// Masked action distribution for a state (diagnostics / tests).
  [[nodiscard]] std::vector<float> action_probabilities(
      std::span<const float> state, std::span<const std::uint8_t> mask) const;

  [[nodiscard]] const ReinforceConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t trajectory_length() const noexcept { return actions_.size(); }

  /// Sizes the worker pool of the data-parallel gradient engine used by
  /// finish_episode()'s batched policy-gradient step (fixed block size and
  /// reduction order: any worker count is bit-identical; 0 clamps to 1).
  /// Runtime execution config: never serialized.
  void set_learner_threads(std::size_t workers);
  [[nodiscard]] std::size_t learner_threads() const noexcept {
    return pool_->workers();
  }

  /// Gradient steps taken (one per non-empty finish_episode()).
  [[nodiscard]] std::size_t gradient_steps() const noexcept { return grad_steps_; }
  /// Cumulative wall-clock seconds spent in finish_episode()'s gradient
  /// work. Not serialized (timing, not state).
  [[nodiscard]] double grad_seconds() const noexcept { return grad_seconds_; }

  /// Policy network access (weight transfer between agents, diagnostics).
  [[nodiscard]] nn::Mlp& policy() noexcept { return policy_; }
  [[nodiscard]] const nn::Mlp& policy() const noexcept { return policy_; }

  /// Full learner-state checkpoint: policy weights, optimizer moments, the
  /// EWMA baseline, the RNG stream, and any in-flight trajectory. Restoring
  /// into an agent built from the same config continues bit-identically.
  void save_state(Serializer& out) const;
  /// Restores state written by save_state().
  void load_state(Deserializer& in);

 private:
  [[nodiscard]] std::vector<float> masked_probs(std::span<const float> logits,
                                                std::span<const std::uint8_t> mask) const;

  ReinforceConfig config_;
  mutable Rng rng_;
  mutable nn::Mlp policy_;
  std::unique_ptr<nn::Adam> optimizer_;
  Ewma baseline_;

  std::vector<std::vector<float>> states_;
  std::vector<std::vector<std::uint8_t>> masks_;
  std::vector<int> actions_;
  std::vector<float> rewards_;

  // ---- Data-parallel gradient engine state (never serialized) --------------
  // pool_ is never null: a 1-worker pool runs every block inline on the
  // caller (no helper thread), keeping the gradient path branch-free.
  std::unique_ptr<nn::GradWorkPool> pool_;
  std::vector<nn::MlpWorkspace> worker_ws_;       ///< per-worker forward caches
  std::vector<nn::Matrix> worker_d_out_;          ///< per-worker grad rows
  std::vector<nn::GradAccumulator> accums_;       ///< per-block accumulators
  std::size_t grad_steps_ = 0;
  double grad_seconds_ = 0.0;
};

}  // namespace vnfm::rl
