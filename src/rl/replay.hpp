// Experience replay buffers (uniform ring buffer and proportional
// prioritised replay backed by a sum tree), as used by DQN-family agents.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace vnfm::rl {

/// One environment transition. `next_valid` masks actions that are feasible
/// in the next state so the bootstrap max only ranges over legal actions;
/// it is ignored when `done` is set.
struct Transition {
  std::vector<float> state;
  int action = 0;
  float reward = 0.0F;
  std::vector<float> next_state;
  bool done = false;
  std::vector<std::uint8_t> next_valid;
  /// Discount to apply to the bootstrap term. Negative means "use the
  /// agent's gamma"; n-step transitions store gamma^n here.
  float bootstrap_discount = -1.0F;
};

/// Writes one transition into the open chunk (checkpoint building block
/// shared by the replay buffers and the DQN n-step buffer).
void save_transition(Serializer& out, const Transition& t);
/// Reads a transition written by save_transition().
[[nodiscard]] Transition load_transition(Deserializer& in);

/// Fixed-capacity uniform replay: overwrites the oldest transition when full.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition t);
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }

  /// Uniformly samples `count` transitions (with replacement).
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t count, Rng& rng) const;

  [[nodiscard]] const Transition& at(std::size_t i) const { return storage_.at(i); }

  /// Checkpoint write: every stored transition plus the ring cursor, so a
  /// restored buffer overwrites in the same order the original would have.
  void save(Serializer& out) const;
  /// Restores state written by save(); throws SerializeError when the
  /// archived capacity differs from this buffer's.
  void load(Deserializer& in);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> storage_;
};

/// Binary-indexed sum tree over non-negative priorities with O(log n)
/// update and prefix-sum sampling. Used by PrioritizedReplay.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  void set(std::size_t index, double priority);
  [[nodiscard]] double get(std::size_t index) const;
  [[nodiscard]] double total() const noexcept;
  /// Finds the leaf whose cumulative range contains `prefix` in [0, total()).
  [[nodiscard]] std::size_t find_prefix(double prefix) const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t leaf_base_;
  std::vector<double> nodes_;
};

/// Proportional prioritised replay (Schaul et al., 2016): transitions are
/// sampled with probability p_i^alpha / sum(p^alpha); importance weights
/// w_i = (N * P(i))^-beta, normalised by the max weight in the batch.
class PrioritizedReplay {
 public:
  struct Options {
    std::size_t capacity = 1 << 16;
    double alpha = 0.6;
    double beta = 0.4;
    double epsilon = 1e-3;  ///< floor added to |TD error| priorities
  };

  explicit PrioritizedReplay(Options options);

  void push(Transition t);

  struct Sample {
    std::vector<std::size_t> indices;
    std::vector<const Transition*> transitions;
    std::vector<float> weights;  ///< normalised importance weights
  };

  [[nodiscard]] Sample sample(std::size_t count, Rng& rng) const;

  /// Updates priorities after a learning step from new |TD errors|.
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<float>& td_errors);

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return options_.capacity; }
  void set_beta(double beta) noexcept { options_.beta = beta; }
  [[nodiscard]] double beta() const noexcept { return options_.beta; }

  /// Checkpoint write: transitions, ring cursor, per-slot priorities, and the
  /// running max priority.
  void save(Serializer& out) const;
  /// Restores state written by save() (rebuilding the sum tree); throws
  /// SerializeError when the archived capacity differs.
  void load(Deserializer& in);

 private:
  Options options_;
  std::size_t next_ = 0;
  double max_priority_ = 1.0;
  std::vector<Transition> storage_;
  SumTree tree_;
};

}  // namespace vnfm::rl
