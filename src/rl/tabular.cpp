#include "rl/tabular.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/serialize.hpp"

namespace vnfm::rl {

TabularQAgent::TabularQAgent(TabularQConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      epsilon_schedule_(config_.epsilon_start, config_.epsilon_end,
                        config_.epsilon_decay_steps),
      default_row_(config_.action_dim, config_.optimistic_init) {
  if (config_.action_dim == 0) throw std::invalid_argument("action_dim must be positive");
}

double TabularQAgent::epsilon() const noexcept { return epsilon_schedule_.value(steps_); }

const std::vector<double>& TabularQAgent::row(std::uint64_t key) const {
  const auto it = table_.find(key);
  return it == table_.end() ? default_row_ : it->second;
}

std::vector<double>& TabularQAgent::row_mutable(std::uint64_t key) {
  const auto [it, inserted] = table_.try_emplace(key, default_row_);
  return it->second;
}

int TabularQAgent::greedy_from_row(const std::vector<double>& q,
                                   std::span<const std::uint8_t> mask) const {
  int best = -1;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < q.size(); ++a) {
    if (!mask.empty() && !mask[a]) continue;
    if (q[a] > best_value) {
      best_value = q[a];
      best = static_cast<int>(a);
    }
  }
  if (best < 0) throw std::runtime_error("no valid action in tabular greedy");
  return best;
}

int TabularQAgent::act(std::uint64_t state_key, std::span<const std::uint8_t> mask) {
  const double eps = epsilon();
  ++steps_;
  if (rng_.uniform() < eps) {
    if (mask.empty()) return static_cast<int>(rng_.uniform_index(config_.action_dim));
    std::size_t valid = 0;
    for (const auto m : mask)
      if (m) ++valid;
    if (valid == 0) throw std::runtime_error("no valid action to sample");
    auto target = rng_.uniform_index(valid);
    for (std::size_t a = 0; a < mask.size(); ++a) {
      if (!mask[a]) continue;
      if (target == 0) return static_cast<int>(a);
      --target;
    }
  }
  return greedy_from_row(row(state_key), mask);
}

int TabularQAgent::act_greedy(std::uint64_t state_key,
                              std::span<const std::uint8_t> mask) const {
  return greedy_from_row(row(state_key), mask);
}

void TabularQAgent::update(std::uint64_t state_key, int action, double reward,
                           std::uint64_t next_state_key, bool done,
                           std::span<const std::uint8_t> next_mask) {
  double bootstrap = 0.0;
  if (!done) {
    const auto& next_q = row(next_state_key);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < next_q.size(); ++a) {
      if (!next_mask.empty() && !next_mask[a]) continue;
      best = std::max(best, next_q[a]);
    }
    if (best == -std::numeric_limits<double>::infinity()) best = 0.0;
    bootstrap = best;
  }
  auto& q = row_mutable(state_key);
  const auto a = static_cast<std::size_t>(action);
  if (a >= q.size()) throw std::out_of_range("tabular action out of range");
  const double target = reward + (done ? 0.0 : config_.gamma * bootstrap);
  q[a] += config_.learning_rate * (target - q[a]);
}

void TabularQAgent::ingest(std::uint64_t state_key, int action, double reward,
                           std::uint64_t next_state_key, bool done,
                           std::span<const std::uint8_t> next_mask) {
  ++steps_;  // actors hold snapshots; the schedule advances per ingested step
  update(state_key, action, reward, next_state_key, done, next_mask);
}

double TabularQAgent::q_value(std::uint64_t state_key, int action) const {
  return row(state_key).at(static_cast<std::size_t>(action));
}

void TabularQAgent::save_state(Serializer& out) const {
  out.begin_chunk("tabular_agent");
  out.write_u64(config_.action_dim);
  out.write_u64(steps_);
  save_rng(out, rng_);
  // Sorted key order: unordered_map iteration is unspecified, and byte-stable
  // archives let the checkpoint tests compare serialized state for equality.
  std::vector<std::uint64_t> keys;
  keys.reserve(table_.size());
  for (const auto& [key, row] : table_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  out.write_u64(keys.size());
  for (const std::uint64_t key : keys) {
    out.write_u64(key);
    out.write_f64_vec(table_.at(key));
  }
  out.end_chunk();
}

void TabularQAgent::load_state(Deserializer& in) {
  in.enter_chunk("tabular_agent");
  if (in.read_u64() != config_.action_dim)
    throw SerializeError("tabular config mismatch in checkpoint");
  steps_ = in.read_u64();
  load_rng(in, rng_);
  table_.clear();
  const std::uint64_t entries = in.read_u64();
  in.expect_items(entries, 16, "Q-table entries");  // key + row length per entry
  table_.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint64_t key = in.read_u64();
    auto row = in.read_f64_vec();
    if (row.size() != config_.action_dim)
      throw SerializeError("tabular row width mismatch in checkpoint");
    table_.emplace(key, std::move(row));
  }
  in.leave_chunk();
}

TabularActorView::TabularActorView(const TabularQAgent& learner)
    : snapshot_(learner), epsilon_(learner.epsilon()),
      rng_(learner.config().seed) {}

void TabularActorView::sync(const TabularQAgent& learner) {
  snapshot_ = learner;
  epsilon_ = learner.epsilon();
}

int TabularActorView::act(std::uint64_t state_key, std::span<const std::uint8_t> mask) {
  const double eps = epsilon();
  if (rng_.uniform() < eps) {
    if (mask.empty())
      return static_cast<int>(rng_.uniform_index(snapshot_.config().action_dim));
    std::size_t valid = 0;
    for (const auto m : mask)
      if (m) ++valid;
    if (valid == 0) throw std::runtime_error("no valid action to sample");
    auto target = rng_.uniform_index(valid);
    for (std::size_t a = 0; a < mask.size(); ++a) {
      if (!mask[a]) continue;
      if (target == 0) return static_cast<int>(a);
      --target;
    }
  }
  return snapshot_.act_greedy(state_key, mask);
}

std::uint64_t TabularQAgent::discretize(std::span<const float> features,
                                        std::size_t buckets) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const float f : features) {
    const double clamped = std::clamp(static_cast<double>(f), 0.0, 1.0);
    auto level = static_cast<std::uint64_t>(clamped * static_cast<double>(buckets));
    if (level >= buckets) level = buckets - 1;
    hash ^= level + 1;
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

}  // namespace vnfm::rl
