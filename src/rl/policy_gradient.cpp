#include "rl/policy_gradient.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vnfm::rl {
namespace {

nn::MlpConfig network_config(const ReinforceConfig& config) {
  nn::MlpConfig net;
  net.input_dim = config.state_dim;
  net.hidden_dims = config.hidden_dims;
  net.output_dim = config.action_dim;
  net.activation = nn::Activation::kTanh;
  net.dueling = false;
  return net;
}

}  // namespace

ReinforceAgent::ReinforceAgent(ReinforceConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      policy_(network_config(config_)),
      baseline_(config_.baseline_alpha),
      pool_(std::make_unique<nn::GradWorkPool>(1)) {
  if (config_.state_dim == 0 || config_.action_dim == 0)
    throw std::invalid_argument("REINFORCE needs non-zero state and action dims");
  policy_.init(rng_);
  optimizer_ = std::make_unique<nn::Adam>(
      policy_.parameters(), nn::Adam::Options{.learning_rate = config_.learning_rate});
}

std::vector<float> ReinforceAgent::masked_probs(std::span<const float> logits,
                                                std::span<const std::uint8_t> mask) const {
  std::vector<float> probs(logits.size(), 0.0F);
  float max_logit = -std::numeric_limits<float>::infinity();
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!mask.empty() && !mask[a]) continue;
    max_logit = std::max(max_logit, logits[a]);
  }
  if (max_logit == -std::numeric_limits<float>::infinity())
    throw std::runtime_error("no valid action in policy mask");
  float total = 0.0F;
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!mask.empty() && !mask[a]) continue;
    probs[a] = std::exp(logits[a] - max_logit);
    total += probs[a];
  }
  for (float& p : probs) p /= total;
  return probs;
}

int ReinforceAgent::act(std::span<const float> state, std::span<const std::uint8_t> mask) {
  const auto logits = policy_.forward_row(state);
  const auto probs = masked_probs(logits, mask);
  double target = rng_.uniform();
  int action = -1;
  for (std::size_t a = 0; a < probs.size(); ++a) {
    target -= probs[a];
    if (target < 0.0) {
      action = static_cast<int>(a);
      break;
    }
  }
  if (action < 0) {
    for (std::size_t a = probs.size(); a-- > 0;) {
      if (probs[a] > 0.0F) {
        action = static_cast<int>(a);
        break;
      }
    }
  }
  states_.emplace_back(state.begin(), state.end());
  masks_.emplace_back(mask.begin(), mask.end());
  actions_.push_back(action);
  rewards_.push_back(0.0F);  // filled by record_reward
  return action;
}

int ReinforceAgent::act_greedy(std::span<const float> state,
                               std::span<const std::uint8_t> mask) const {
  const auto logits = policy_.forward_row(state);
  const auto probs = masked_probs(logits, mask);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

void ReinforceAgent::record_reward(float reward) {
  if (rewards_.empty()) throw std::runtime_error("record_reward before act");
  rewards_.back() += reward;
}

std::vector<float> ReinforceAgent::action_probabilities(
    std::span<const float> state, std::span<const std::uint8_t> mask) const {
  const auto logits = policy_.forward_row(state);
  return masked_probs(logits, mask);
}

void ReinforceAgent::save_state(Serializer& out) const {
  out.begin_chunk("reinforce_agent");
  out.write_u64(config_.state_dim);
  out.write_u64(config_.action_dim);
  save_rng(out, rng_);
  policy_.save(out);
  optimizer_->save(out);
  out.write_f64(baseline_.value());
  out.write_bool(baseline_.initialized());
  out.write_u64(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    out.write_f32_vec(states_[i]);
    out.write_u8_vec(masks_[i]);
    out.write_i64(actions_[i]);
    out.write_f32(rewards_[i]);
  }
  out.end_chunk();
}

void ReinforceAgent::load_state(Deserializer& in) {
  in.enter_chunk("reinforce_agent");
  if (in.read_u64() != config_.state_dim || in.read_u64() != config_.action_dim)
    throw SerializeError("REINFORCE config mismatch in checkpoint");
  load_rng(in, rng_);
  policy_.load(in);
  optimizer_->load(in);
  const double baseline_value = in.read_f64();
  baseline_.restore(baseline_value, in.read_bool());
  const std::uint64_t steps = in.read_u64();
  in.expect_items(steps, 28, "trajectory steps");
  states_.resize(steps);
  masks_.resize(steps);
  actions_.resize(steps);
  rewards_.resize(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    states_[i] = in.read_f32_vec();
    masks_[i] = in.read_u8_vec();
    actions_[i] = static_cast<int>(in.read_i64());
    rewards_[i] = in.read_f32();
  }
  in.leave_chunk();
}

void ReinforceAgent::set_learner_threads(std::size_t workers) {
  if (workers == 0) workers = 1;
  if (pool_->workers() == workers) return;
  pool_ = std::make_unique<nn::GradWorkPool>(workers);
}

double ReinforceAgent::finish_episode() {
  if (actions_.empty()) return 0.0;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = actions_.size();

  // Discounted returns-to-go.
  std::vector<float> returns(n, 0.0F);
  float running = 0.0F;
  for (std::size_t i = n; i-- > 0;) {
    running = rewards_[i] + config_.gamma * running;
    returns[i] = running;
  }
  const double episode_return = returns.front();
  baseline_.add(episode_return);
  const auto baseline = static_cast<float>(baseline_.value());

  // One batched policy-gradient step,
  //   d(-J)/d(logit_a) = (pi_a - 1{a taken}) * advantage / n  (+ entropy term),
  // run through the data-parallel gradient engine: the trajectory splits
  // into fixed nn::kGradBlockRows-row blocks (every per-row term above is
  // independent), each block backwards into its own accumulator, and the
  // accumulators reduce in ascending block index — bit-identical for any
  // worker count (determinism invariant #8).
  nn::Matrix states(n, config_.state_dim);
  for (std::size_t i = 0; i < n; ++i)
    std::copy(states_[i].begin(), states_[i].end(), states.row(i).begin());
  nn::Matrix logits(n, config_.action_dim);

  const std::size_t blocks = nn::grad_block_count(n);
  const std::size_t workers = pool_->workers();
  if (worker_ws_.size() < workers) {
    worker_ws_.resize(workers);
    worker_d_out_.resize(workers);
  }
  if (accums_.size() < blocks) accums_.resize(blocks);

  auto run_block = [&](std::size_t b, std::size_t w) {
    const std::size_t row0 = b * nn::kGradBlockRows;
    const std::size_t rows = std::min(nn::kGradBlockRows, n - row0);
    nn::MlpWorkspace& ws = worker_ws_[w];
    policy_.forward_block(states, row0, rows, logits, ws);

    nn::Matrix& d_out = worker_d_out_[w];
    d_out.resize(rows, config_.action_dim);  // zeroed by resize
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = row0 + r;
      const auto probs = masked_probs(logits.row(i), masks_[i]);
      const float advantage = returns[i] - baseline;
      float* g = d_out.row(r).data();
      for (std::size_t a = 0; a < probs.size(); ++a) {
        if (!masks_[i].empty() && !masks_[i][a]) continue;
        const float indicator = static_cast<int>(a) == actions_[i] ? 1.0F : 0.0F;
        g[a] = (probs[a] - indicator) * advantage / static_cast<float>(n);
        // Entropy regularisation: d(-H)/d(logit_a) = pi_a * (log pi_a + H).
        if (config_.entropy_bonus > 0.0F && probs[a] > 1e-8F) {
          float entropy = 0.0F;
          for (const float p : probs)
            if (p > 1e-8F) entropy -= p * std::log(p);
          g[a] += config_.entropy_bonus * probs[a] * (std::log(probs[a]) + entropy) /
                  static_cast<float>(n);
        }
      }
    }

    accums_[b].reset(policy_);
    policy_.backward_block(d_out, ws, accums_[b]);
  };
  // Backward blocks and the Adam step share ONE pool wake; the fixed
  // block-index reduction runs serially on the caller between the phases.
  auto reduce_then_begin_adam = [&] {
    policy_.zero_grad();
    for (std::size_t b = 0; b < blocks; ++b) policy_.apply_gradients(accums_[b]);
    policy_.clip_grad_norm(config_.grad_clip_norm);
    optimizer_->begin_step();
  };
  auto adam_block = [&](std::size_t b, std::size_t) { optimizer_->step_block(b); };
  const std::array<nn::GradWorkPool::Phase, 2> phases = {
      nn::GradWorkPool::make_phase(blocks, run_block),
      nn::GradWorkPool::make_phase(reduce_then_begin_adam, optimizer_->block_count(),
                                   adam_block)};
  pool_->run_phases({phases.data(), phases.size()});
  ++grad_steps_;
  grad_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  states_.clear();
  masks_.clear();
  actions_.clear();
  rewards_.clear();
  return episode_return;
}

}  // namespace vnfm::rl
