#include "rl/replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vnfm::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("replay capacity must be positive");
  storage_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void ReplayBuffer::push(Transition t) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t count, Rng& rng) const {
  if (storage_.empty()) throw std::runtime_error("sampling from empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(&storage_[rng.uniform_index(storage_.size())]);
  return out;
}

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("sum tree capacity must be positive");
  leaf_base_ = 1;
  while (leaf_base_ < capacity_) leaf_base_ <<= 1;
  nodes_.assign(2 * leaf_base_, 0.0);
}

void SumTree::set(std::size_t index, double priority) {
  if (index >= capacity_) throw std::out_of_range("sum tree index");
  if (priority < 0.0 || !std::isfinite(priority))
    throw std::invalid_argument("priority must be finite and non-negative");
  std::size_t node = leaf_base_ + index;
  const double delta = priority - nodes_[node];
  while (node > 0) {
    nodes_[node] += delta;
    node >>= 1;
  }
}

double SumTree::get(std::size_t index) const {
  if (index >= capacity_) throw std::out_of_range("sum tree index");
  return nodes_[leaf_base_ + index];
}

double SumTree::total() const noexcept { return nodes_[1]; }

std::size_t SumTree::find_prefix(double prefix) const {
  std::size_t node = 1;
  while (node < leaf_base_) {
    const std::size_t left = 2 * node;
    if (prefix < nodes_[left]) {
      node = left;
    } else {
      prefix -= nodes_[left];
      node = left + 1;
    }
  }
  const std::size_t leaf = node - leaf_base_;
  return std::min(leaf, capacity_ - 1);
}

PrioritizedReplay::PrioritizedReplay(Options options)
    : options_(options), tree_(options.capacity) {
  if (options_.capacity == 0) throw std::invalid_argument("replay capacity must be positive");
}

void PrioritizedReplay::push(Transition t) {
  const std::size_t index = next_;
  if (storage_.size() < options_.capacity) {
    storage_.push_back(std::move(t));
  } else {
    storage_[index] = std::move(t);
  }
  // New transitions get max priority so each is learned from at least once.
  tree_.set(index, std::pow(max_priority_, options_.alpha));
  next_ = (next_ + 1) % options_.capacity;
}

PrioritizedReplay::Sample PrioritizedReplay::sample(std::size_t count, Rng& rng) const {
  if (storage_.empty()) throw std::runtime_error("sampling from empty prioritized replay");
  Sample sample;
  sample.indices.reserve(count);
  sample.transitions.reserve(count);
  sample.weights.reserve(count);
  const double total = tree_.total();
  const auto n = static_cast<double>(storage_.size());
  double max_weight = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double prefix = rng.uniform() * total;
    std::size_t index = tree_.find_prefix(prefix);
    if (index >= storage_.size()) index = storage_.size() - 1;
    const double p = tree_.get(index) / total;
    const double weight = std::pow(n * std::max(p, 1e-12), -options_.beta);
    sample.indices.push_back(index);
    sample.transitions.push_back(&storage_[index]);
    sample.weights.push_back(static_cast<float>(weight));
    max_weight = std::max(max_weight, weight);
  }
  if (max_weight > 0.0)
    for (float& w : sample.weights) w = static_cast<float>(w / max_weight);
  return sample;
}

void PrioritizedReplay::update_priorities(const std::vector<std::size_t>& indices,
                                          const std::vector<float>& td_errors) {
  if (indices.size() != td_errors.size())
    throw std::invalid_argument("priority update arity mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const double priority = std::fabs(static_cast<double>(td_errors[i])) + options_.epsilon;
    max_priority_ = std::max(max_priority_, priority);
    tree_.set(indices[i], std::pow(priority, options_.alpha));
  }
}

void save_transition(Serializer& out, const Transition& t) {
  out.write_f32_vec(t.state);
  out.write_i64(t.action);
  out.write_f32(t.reward);
  out.write_f32_vec(t.next_state);
  out.write_bool(t.done);
  out.write_u8_vec(t.next_valid);
  out.write_f32(t.bootstrap_discount);
}

Transition load_transition(Deserializer& in) {
  Transition t;
  t.state = in.read_f32_vec();
  t.action = static_cast<int>(in.read_i64());
  t.reward = in.read_f32();
  t.next_state = in.read_f32_vec();
  t.done = in.read_bool();
  t.next_valid = in.read_u8_vec();
  t.bootstrap_discount = in.read_f32();
  return t;
}

void ReplayBuffer::save(Serializer& out) const {
  out.begin_chunk("replay");
  out.write_u64(capacity_);
  out.write_u64(next_);
  out.write_u64(storage_.size());
  for (const Transition& t : storage_) save_transition(out, t);
  out.end_chunk();
}

void ReplayBuffer::load(Deserializer& in) {
  in.enter_chunk("replay");
  if (in.read_u64() != capacity_)
    throw SerializeError("replay capacity mismatch in checkpoint");
  next_ = in.read_u64();
  if (next_ >= capacity_)
    throw SerializeError("replay cursor out of range in checkpoint");
  const std::uint64_t count = in.read_u64();
  if (count > capacity_)
    throw SerializeError("replay size exceeds capacity in checkpoint");
  in.expect_items(count, 41, "replay transitions");  // min serialized size
  storage_.clear();
  storage_.resize(count);
  for (Transition& t : storage_) t = load_transition(in);
  in.leave_chunk();
}

void PrioritizedReplay::save(Serializer& out) const {
  out.begin_chunk("per");
  out.write_u64(options_.capacity);
  out.write_u64(next_);
  out.write_f64(max_priority_);
  out.write_f64(options_.beta);
  out.write_u64(storage_.size());
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    save_transition(out, storage_[i]);
    out.write_f64(tree_.get(i));
  }
  out.end_chunk();
}

void PrioritizedReplay::load(Deserializer& in) {
  in.enter_chunk("per");
  if (in.read_u64() != options_.capacity)
    throw SerializeError("prioritized replay capacity mismatch in checkpoint");
  next_ = in.read_u64();
  if (next_ >= options_.capacity)
    throw SerializeError("prioritized replay cursor out of range in checkpoint");
  max_priority_ = in.read_f64();
  options_.beta = in.read_f64();
  storage_.clear();
  tree_ = SumTree(options_.capacity);
  const std::uint64_t count = in.read_u64();
  if (count > options_.capacity)
    throw SerializeError("prioritized replay size exceeds capacity in checkpoint");
  in.expect_items(count, 49, "prioritized transitions");  // transition + priority
  storage_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    storage_[i] = load_transition(in);
    tree_.set(i, in.read_f64());
  }
  in.leave_chunk();
}

}  // namespace vnfm::rl
