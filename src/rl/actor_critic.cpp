#include "rl/actor_critic.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vnfm::rl {
namespace {

nn::MlpConfig actor_config(const ActorCriticConfig& config) {
  nn::MlpConfig net;
  net.input_dim = config.state_dim;
  net.hidden_dims = config.hidden_dims;
  net.output_dim = config.action_dim;
  net.activation = nn::Activation::kTanh;
  return net;
}

nn::MlpConfig critic_config(const ActorCriticConfig& config) {
  nn::MlpConfig net;
  net.input_dim = config.state_dim;
  net.hidden_dims = config.hidden_dims;
  net.output_dim = 1;
  net.activation = nn::Activation::kTanh;
  return net;
}

}  // namespace

ActorCriticAgent::ActorCriticAgent(ActorCriticConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      actor_(actor_config(config_)),
      critic_(critic_config(config_)) {
  if (config_.state_dim == 0 || config_.action_dim == 0)
    throw std::invalid_argument("actor-critic needs non-zero state and action dims");
  actor_.init(rng_);
  critic_.init(rng_);
  actor_opt_ = std::make_unique<nn::Adam>(actor_.parameters(),
                                          nn::Adam::Options{.learning_rate = config_.actor_lr});
  critic_opt_ = std::make_unique<nn::Adam>(
      critic_.parameters(), nn::Adam::Options{.learning_rate = config_.critic_lr});
  pool_ = std::make_unique<nn::GradWorkPool>(1);
}

void ActorCriticAgent::set_learner_threads(std::size_t workers) {
  if (workers == 0) workers = 1;
  if (pool_->workers() == workers) return;
  pool_ = std::make_unique<nn::GradWorkPool>(workers);
}

std::vector<float> ActorCriticAgent::masked_probs(
    std::span<const float> logits, std::span<const std::uint8_t> mask) const {
  std::vector<float> probs(logits.size(), 0.0F);
  float max_logit = -std::numeric_limits<float>::infinity();
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!mask.empty() && !mask[a]) continue;
    max_logit = std::max(max_logit, logits[a]);
  }
  if (max_logit == -std::numeric_limits<float>::infinity())
    throw std::runtime_error("no valid action in actor-critic mask");
  float total = 0.0F;
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!mask.empty() && !mask[a]) continue;
    probs[a] = std::exp(logits[a] - max_logit);
    total += probs[a];
  }
  for (float& p : probs) p /= total;
  return probs;
}

int ActorCriticAgent::act(std::span<const float> state,
                          std::span<const std::uint8_t> mask) {
  const auto logits = actor_.forward_row(state);
  const auto probs = masked_probs(logits, mask);
  double target = rng_.uniform();
  int action = -1;
  for (std::size_t a = 0; a < probs.size(); ++a) {
    target -= probs[a];
    if (target < 0.0) {
      action = static_cast<int>(a);
      break;
    }
  }
  if (action < 0) {
    for (std::size_t a = probs.size(); a-- > 0;) {
      if (probs[a] > 0.0F) {
        action = static_cast<int>(a);
        break;
      }
    }
  }
  pending_state_.assign(state.begin(), state.end());
  pending_mask_.assign(mask.begin(), mask.end());
  pending_action_ = action;
  has_pending_ = true;
  return action;
}

int ActorCriticAgent::act_greedy(std::span<const float> state,
                                 std::span<const std::uint8_t> mask) const {
  const auto logits = actor_.forward_row(state);
  const auto probs = masked_probs(logits, mask);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) - probs.begin());
}

float ActorCriticAgent::state_value(std::span<const float> state) const {
  return critic_.forward_row(state)[0];
}

std::vector<float> ActorCriticAgent::action_probabilities(
    std::span<const float> state, std::span<const std::uint8_t> mask) const {
  return masked_probs(actor_.forward_row(state), mask);
}

void ActorCriticAgent::save_state(Serializer& out) const {
  out.begin_chunk("a2c_agent");
  out.write_u64(config_.state_dim);
  out.write_u64(config_.action_dim);
  out.write_u64(updates_);
  save_rng(out, rng_);
  actor_.save(out);
  critic_.save(out);
  actor_opt_->save(out);
  critic_opt_->save(out);
  out.write_bool(has_pending_);
  out.write_f32_vec(pending_state_);
  out.write_u8_vec(pending_mask_);
  out.write_i64(pending_action_);
  out.end_chunk();
}

void ActorCriticAgent::load_state(Deserializer& in) {
  in.enter_chunk("a2c_agent");
  if (in.read_u64() != config_.state_dim || in.read_u64() != config_.action_dim)
    throw SerializeError("actor-critic config mismatch in checkpoint");
  updates_ = in.read_u64();
  load_rng(in, rng_);
  actor_.load(in);
  critic_.load(in);
  actor_opt_->load(in);
  critic_opt_->load(in);
  has_pending_ = in.read_bool();
  pending_state_ = in.read_f32_vec();
  pending_mask_ = in.read_u8_vec();
  pending_action_ = static_cast<int>(in.read_i64());
  in.leave_chunk();
}

double ActorCriticAgent::learn(float reward, std::span<const float> next_state,
                               bool done) {
  if (!has_pending_) throw std::runtime_error("learn without a pending act");
  has_pending_ = false;
  const auto start = std::chrono::steady_clock::now();

  const float value = state_value(pending_state_);
  const float bootstrap = done ? 0.0F : state_value(next_state);
  const float td_error = reward + config_.gamma * bootstrap - value;

  // Both updates run through the block-wise gradient engine, same as the
  // DQN/REINFORCE learners, fused into ONE phased pool job: critic
  // backward -> critic Adam -> actor backward -> actor Adam, with the
  // serial reductions in the prepare hooks. Phase order matches the old
  // sequential code exactly, so results are unchanged.
  nn::Matrix input = nn::Matrix::from_row(pending_state_);
  nn::Matrix critic_out(1, 1);
  nn::Matrix critic_grad(1, 1);
  nn::Matrix logits(1, config_.action_dim);
  nn::Matrix actor_grad(1, config_.action_dim, 0.0F);

  // Critic: minimise 0.5 * td^2 -> d(loss)/dV = -td.
  auto critic_backward = [&](std::size_t, std::size_t) {
    critic_.forward_block(input, 0, 1, critic_out, critic_ws_);
    critic_grad.at(0, 0) = -td_error;
    critic_accum_.reset(critic_);
    critic_.backward_block(critic_grad, critic_ws_, critic_accum_);
  };
  auto critic_reduce = [&] {
    critic_.zero_grad();
    critic_.apply_gradients(critic_accum_);
    critic_.clip_grad_norm(config_.grad_clip_norm);
    critic_opt_->begin_step();
  };
  auto critic_adam = [&](std::size_t b, std::size_t) { critic_opt_->step_block(b); };

  // Actor: policy gradient with the TD error as advantage (+ entropy).
  auto actor_backward = [&](std::size_t, std::size_t) {
    actor_.forward_block(input, 0, 1, logits, actor_ws_);
    const auto probs = masked_probs(logits.row(0), pending_mask_);
    float entropy = 0.0F;
    for (const float p : probs)
      if (p > 1e-8F) entropy -= p * std::log(p);
    float* g = actor_grad.row(0).data();
    for (std::size_t a = 0; a < probs.size(); ++a) {
      if (!pending_mask_.empty() && !pending_mask_[a]) continue;
      const float indicator = static_cast<int>(a) == pending_action_ ? 1.0F : 0.0F;
      g[a] = (probs[a] - indicator) * td_error;
      if (config_.entropy_bonus > 0.0F && probs[a] > 1e-8F)
        g[a] += config_.entropy_bonus * probs[a] * (std::log(probs[a]) + entropy);
    }
    actor_accum_.reset(actor_);
    actor_.backward_block(actor_grad, actor_ws_, actor_accum_);
  };
  auto actor_reduce = [&] {
    actor_.zero_grad();
    actor_.apply_gradients(actor_accum_);
    actor_.clip_grad_norm(config_.grad_clip_norm);
    actor_opt_->begin_step();
  };
  auto actor_adam = [&](std::size_t b, std::size_t) { actor_opt_->step_block(b); };

  const std::array<nn::GradWorkPool::Phase, 4> phases = {
      nn::GradWorkPool::make_phase(1, critic_backward),
      nn::GradWorkPool::make_phase(critic_reduce, critic_opt_->block_count(), critic_adam),
      nn::GradWorkPool::make_phase(1, actor_backward),
      nn::GradWorkPool::make_phase(actor_reduce, actor_opt_->block_count(), actor_adam)};
  pool_->run_phases({phases.data(), phases.size()});
  ++updates_;
  grad_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return td_error;
}

}  // namespace vnfm::rl
