#include "rl/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace vnfm::rl {

double ExponentialSchedule::value(std::size_t step) const noexcept {
  const double v = start_ * std::pow(decay_, static_cast<double>(step));
  return std::max(v, end_);
}

}  // namespace vnfm::rl
