// One-step advantage actor-critic (A2C-style, Mnih et al. 2016 without the
// asynchrony): an online policy-gradient learner whose critic bootstraps
// every step, unlike REINFORCE's Monte-Carlo returns. Included as the
// strongest policy-gradient comparator to the value-based DQN manager.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/grad_pool.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace vnfm::rl {

struct ActorCriticConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden_dims{64, 64};
  float actor_lr = 3e-4F;
  float critic_lr = 1e-3F;
  float gamma = 0.95F;
  float entropy_bonus = 1e-3F;
  double grad_clip_norm = 5.0;
  std::uint64_t seed = 19;
};

/// Online actor-critic over a maskable discrete action space. Usage per
/// decision: act(state, mask) -> env step -> learn(reward, next_state,
/// next_mask, done). Separate actor/critic networks keep the updates simple
/// and auditable.
class ActorCriticAgent {
 public:
  explicit ActorCriticAgent(ActorCriticConfig config);

  /// Samples from the masked softmax policy; caches the step for learn().
  [[nodiscard]] int act(std::span<const float> state, std::span<const std::uint8_t> mask);

  /// Mode of the policy (evaluation); does not cache.
  [[nodiscard]] int act_greedy(std::span<const float> state,
                               std::span<const std::uint8_t> mask) const;

  /// One-step TD update from the step cached by the last act().
  /// Returns the TD error (diagnostic).
  double learn(float reward, std::span<const float> next_state, bool done);

  [[nodiscard]] std::vector<float> action_probabilities(
      std::span<const float> state, std::span<const std::uint8_t> mask) const;
  [[nodiscard]] float state_value(std::span<const float> state) const;
  [[nodiscard]] const ActorCriticConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }

  /// Engine hook mirroring DqnAgent/ReinforceAgent: rebuilds the worker
  /// pool (0 clamps to 1). A2C's one-step updates are single-row batches —
  /// one gradient block — so any learner-thread count is trivially
  /// bit-identical; with fewer blocks than workers the phased job runs
  /// inline on the caller. Runtime execution config: never serialized.
  void set_learner_threads(std::size_t workers);
  [[nodiscard]] std::size_t learner_threads() const noexcept {
    return pool_->workers();
  }

  /// Cumulative wall-clock seconds spent in learn()'s gradient work. Not
  /// serialized (timing, not state).
  [[nodiscard]] double grad_seconds() const noexcept { return grad_seconds_; }

  /// Full learner-state checkpoint: actor/critic weights, both optimizers'
  /// moments, the update counter, the RNG stream, and the pending step.
  /// Restoring into an agent built from the same config continues
  /// bit-identically.
  void save_state(Serializer& out) const;
  /// Restores state written by save_state().
  void load_state(Deserializer& in);

  /// Network access (weight transfer between agents, diagnostics).
  [[nodiscard]] nn::Mlp& actor() noexcept { return actor_; }
  [[nodiscard]] const nn::Mlp& actor() const noexcept { return actor_; }
  [[nodiscard]] nn::Mlp& critic() noexcept { return critic_; }
  [[nodiscard]] const nn::Mlp& critic() const noexcept { return critic_; }

 private:
  [[nodiscard]] std::vector<float> masked_probs(std::span<const float> logits,
                                                std::span<const std::uint8_t> mask) const;

  ActorCriticConfig config_;
  mutable Rng rng_;
  mutable nn::Mlp actor_;
  mutable nn::Mlp critic_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  std::size_t updates_ = 0;

  // Cached step awaiting learn().
  bool has_pending_ = false;
  std::vector<float> pending_state_;
  std::vector<std::uint8_t> pending_mask_;
  int pending_action_ = 0;

  // ---- Data-parallel gradient engine state (never serialized) --------------
  std::unique_ptr<nn::GradWorkPool> pool_;  // never null; 1 worker by default
  nn::MlpWorkspace critic_ws_;
  nn::MlpWorkspace actor_ws_;
  nn::GradAccumulator critic_accum_;
  nn::GradAccumulator actor_accum_;
  double grad_seconds_ = 0.0;
};

}  // namespace vnfm::rl
