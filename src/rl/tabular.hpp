// Tabular Q-learning over hashed discrete states. Serves as the classical
// RL baseline: it shows why function approximation is needed once the edge
// system's state space explodes.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "rl/schedule.hpp"

namespace vnfm::rl {

struct TabularQConfig {
  std::size_t action_dim = 0;
  double learning_rate = 0.1;
  double gamma = 0.95;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 20'000;
  double optimistic_init = 0.0;  ///< initial Q for unseen states
  std::uint64_t seed = 13;
};

/// Q-learning with a hash table keyed by caller-provided discrete state ids.
class TabularQAgent {
 public:
  explicit TabularQAgent(TabularQConfig config);

  /// ε-greedy action for the hashed state.
  [[nodiscard]] int act(std::uint64_t state_key, std::span<const std::uint8_t> mask);
  [[nodiscard]] int act_greedy(std::uint64_t state_key,
                               std::span<const std::uint8_t> mask) const;

  /// Q-learning backup: Q(s,a) += lr * (r + gamma * max_a' Q(s',a') - Q(s,a)).
  void update(std::uint64_t state_key, int action, double reward,
              std::uint64_t next_state_key, bool done,
              std::span<const std::uint8_t> next_mask);

  /// Learner-side backup for the actor/learner split: identical to update()
  /// but also advances the step counter. In the parallel pipeline the learner
  /// never calls act() (actors hold TabularActorView snapshots), so the
  /// epsilon schedule must be driven by ingested transitions instead.
  void ingest(std::uint64_t state_key, int action, double reward,
              std::uint64_t next_state_key, bool done,
              std::span<const std::uint8_t> next_mask);

  [[nodiscard]] double q_value(std::uint64_t state_key, int action) const;
  [[nodiscard]] std::size_t table_size() const noexcept { return table_.size(); }
  [[nodiscard]] double epsilon() const noexcept;
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] const TabularQConfig& config() const noexcept { return config_; }

  /// Hashes a coarse discretisation of a continuous feature vector: each
  /// feature is quantised to `buckets` levels in [0,1] and mixed (FNV-1a).
  [[nodiscard]] static std::uint64_t discretize(std::span<const float> features,
                                                std::size_t buckets);

  /// Full learner-state checkpoint: the Q-table (written in sorted key order
  /// so archives are byte-stable), the step counter positioning the epsilon
  /// schedule, and the RNG stream.
  void save_state(Serializer& out) const;
  /// Restores state written by save_state().
  void load_state(Deserializer& in);

 private:
  [[nodiscard]] const std::vector<double>& row(std::uint64_t key) const;
  [[nodiscard]] std::vector<double>& row_mutable(std::uint64_t key);
  [[nodiscard]] int greedy_from_row(const std::vector<double>& q,
                                    std::span<const std::uint8_t> mask) const;

  TabularQConfig config_;
  mutable Rng rng_;
  LinearSchedule epsilon_schedule_;
  std::size_t steps_ = 0;
  std::unordered_map<std::uint64_t, std::vector<double>> table_;
  std::vector<double> default_row_;
};

/// Acting-side snapshot for the actor/learner training split: a copy of the
/// learner's Q-table plus its exploration rate frozen at sync time. Actors
/// act ε-greedily from the snapshot with their own RNG stream (reseeded per
/// episode by the TrainDriver) and never mutate the table; sync() refreshes
/// both the table and the exploration rate at round boundaries.
class TabularActorView {
 public:
  explicit TabularActorView(const TabularQAgent& learner);

  /// Re-copies the learner's table and exploration rate.
  void sync(const TabularQAgent& learner);

  /// ε-greedy action using the frozen snapshot (same masked-uniform sampling
  /// scheme as TabularQAgent::act, drawing from this view's RNG).
  [[nodiscard]] int act(std::uint64_t state_key, std::span<const std::uint8_t> mask);

  void reseed(std::uint64_t seed) noexcept { rng_ = Rng(seed); }
  void set_exploration_enabled(bool enabled) noexcept { explore_ = enabled; }
  [[nodiscard]] double epsilon() const noexcept { return explore_ ? epsilon_ : 0.0; }

 private:
  TabularQAgent snapshot_;
  double epsilon_ = 0.0;
  bool explore_ = true;
  Rng rng_;
};

}  // namespace vnfm::rl
