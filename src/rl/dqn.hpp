// Deep Q-Network agent (Mnih et al., 2015) with the ablation toolbox the
// VNF-management paper era uses: Double DQN (van Hasselt et al., 2016),
// dueling heads (Wang et al., 2016), and proportional prioritised replay
// (Schaul et al., 2016). All action selection supports validity masks so the
// agent never bootstraps through infeasible placements.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/grad_pool.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/replay.hpp"
#include "rl/schedule.hpp"

namespace vnfm::rl {

struct DqnConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden_dims{64, 64};

  float learning_rate = 1e-3F;
  float gamma = 0.95F;
  std::size_t batch_size = 32;
  std::size_t replay_capacity = 50'000;
  std::size_t min_replay_before_training = 500;
  std::size_t train_period = 1;          ///< gradient step every N observes
  std::size_t target_update_period = 500;  ///< hard target sync every N steps
  double grad_clip_norm = 10.0;
  float huber_delta = 1.0F;

  bool double_dqn = true;
  bool dueling = false;
  bool prioritized_replay = false;
  double per_alpha = 0.6;
  double per_beta0 = 0.4;

  /// Multi-step returns: transitions are aggregated over up to n steps
  /// within a (chain) episode before entering replay. 1 = classic DQN.
  std::size_t n_step = 1;

  /// Polyak-averaged target updates: when tau > 0 the target tracks the
  /// online network as w' <- tau*w + (1-tau)*w' every gradient step and
  /// target_update_period is ignored.
  float soft_target_tau = 0.0F;

  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 20'000;

  std::uint64_t seed = 7;
};

/// Greedy argmax over the valid entries of `mask` (empty mask = all valid);
/// throws std::runtime_error when no action is valid.
[[nodiscard]] int greedy_masked_action(std::span<const float> q,
                                       std::span<const std::uint8_t> mask);

/// Uniform draw over the valid entries of `mask` (empty mask = all of
/// [0, action_dim)); throws std::runtime_error when no action is valid.
[[nodiscard]] int random_valid_action(std::span<const std::uint8_t> mask,
                                      std::size_t action_dim, Rng& rng);

/// Value-based agent over a discrete, maskable action space.
class DqnAgent {
 public:
  explicit DqnAgent(DqnConfig config);

  /// ε-greedy action over valid entries of `mask` (empty mask = all valid).
  [[nodiscard]] int act(std::span<const float> state, std::span<const std::uint8_t> mask);

  /// Greedy (evaluation) action; no exploration, no step counting.
  [[nodiscard]] int act_greedy(std::span<const float> state,
                               std::span<const std::uint8_t> mask) const;

  /// Batched greedy actions (serving hot path): row r of `states` is one
  /// decision state, masks[r] its validity mask (nullptr = all valid), and
  /// actions[r] receives the greedy action. One nn::Mlp::forward_batch over
  /// all rows through agent-owned inference scratch — bit-identical to
  /// calling act_greedy row by row (forward_batch is per-row math), so
  /// micro-batching can never change a decision, only amortise per-decision
  /// inference overhead across a shard's queue drain.
  void act_greedy_block(const nn::Matrix& states,
                        std::span<const std::vector<std::uint8_t>* const> masks,
                        std::span<int> actions) const;

  /// Stores a transition (aggregating n-step returns when configured) and
  /// triggers training per the configured period. Returns the training loss
  /// when a gradient step ran.
  std::optional<double> observe(Transition t);

  /// Learner-side ingestion of a transition collected by a detached actor
  /// (DqnActorView). Identical to observe() except that it also advances the
  /// environment-step counter, which act() normally drives: an actor-learner
  /// learner never acts itself, yet its gradient cadence (train_period) and
  /// exploration schedule must keep counting decision steps.
  std::optional<double> ingest(Transition t);

  /// One gradient step from replay (callable directly for tests).
  double train_step();

  /// Q-values for a single state (diagnostics / tests).
  [[nodiscard]] std::vector<float> q_values(std::span<const float> state) const;

  [[nodiscard]] double epsilon() const noexcept;
  [[nodiscard]] std::size_t steps() const noexcept { return env_steps_; }
  [[nodiscard]] std::size_t gradient_steps() const noexcept { return grad_steps_; }
  [[nodiscard]] std::size_t replay_size() const noexcept;
  [[nodiscard]] const DqnConfig& config() const noexcept { return config_; }

  /// Serialises online-network weights; load restores them into both nets.
  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Full learner-state checkpoint: online and target networks, optimizer
  /// moments, replay contents + ring cursor, step counters (which position
  /// the epsilon/beta schedules), the exploration RNG stream, and the
  /// in-flight n-step buffer. Restoring into an agent built from the same
  /// config continues training bit-identically.
  void save_state(Serializer& out) const;
  /// Restores state written by save_state(); throws SerializeError on a
  /// config/architecture mismatch or corrupted archive.
  void load_state(Deserializer& in);

  /// Switches exploration off/on (evaluation mode).
  void set_exploration_enabled(bool enabled) noexcept { explore_ = enabled; }

  /// Sizes the learner-side worker pool of the data-parallel gradient
  /// engine (nn::GradWorkPool): each minibatch splits into fixed
  /// nn::kGradBlockRows-row blocks whose per-block gradients reduce in
  /// ascending block index, so ANY worker count (0 clamps to 1) produces
  /// bit-identical weights, curves, and serialized learner state — only
  /// grad-step wall-clock changes. Runtime execution config: never
  /// serialized.
  void set_learner_threads(std::size_t workers);
  [[nodiscard]] std::size_t learner_threads() const noexcept {
    return pool_->workers();
  }

  /// Cumulative wall-clock seconds spent inside train_step() (sampling +
  /// forward/backward + optimizer); pairs with gradient_steps() for
  /// µs-per-grad-step reporting. Not serialized (timing, not state).
  [[nodiscard]] double grad_seconds() const noexcept { return grad_seconds_; }

  /// Read access to the online network (weight snapshots for actor views).
  [[nodiscard]] const nn::Mlp& online_net() const noexcept { return online_; }

 private:
  /// Per-worker engine scratch: one MlpWorkspace per blocked forward pass
  /// (target net, online-on-next double-DQN pass, online-on-states pass)
  /// plus the block's d(loss)/d(Q) rows.
  struct WorkerScratch {
    nn::MlpWorkspace target;
    nn::MlpWorkspace online_next;
    nn::MlpWorkspace online;
    nn::Matrix d_out;
  };

  double train_on_batch(const std::vector<const Transition*>& batch,
                        std::span<const float> is_weights,
                        std::vector<float>* td_errors_out);
  void push_to_replay(Transition t);
  void flush_n_step_buffer(bool episode_ended);

  DqnConfig config_;
  Rng rng_;
  nn::Mlp online_;
  nn::Mlp target_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::unique_ptr<ReplayBuffer> replay_;
  std::unique_ptr<PrioritizedReplay> per_;
  LinearSchedule epsilon_schedule_;
  LinearSchedule beta_schedule_;
  std::size_t env_steps_ = 0;
  std::size_t grad_steps_ = 0;
  bool explore_ = true;
  std::vector<Transition> n_step_buffer_;  ///< in-flight steps (n-step mode)
  mutable std::vector<float> q_scratch_;   ///< reusable Q-row for act paths
  mutable nn::Matrix batch_q_;             ///< act_greedy_block Q output
  mutable nn::MlpWorkspace infer_ws_;      ///< act_greedy_block forward caches

  // ---- Data-parallel gradient engine state (never serialized) --------------
  // pool_ is never null: a 1-worker pool runs every block inline on the
  // caller (no helper thread), so holding it unconditionally keeps the
  // gradient path branch-free without changing single-threaded numerics.
  std::unique_ptr<nn::GradWorkPool> pool_;
  std::vector<WorkerScratch> worker_scratch_;  ///< indexed by worker id
  std::vector<nn::GradAccumulator> accums_;    ///< indexed by block id
  std::vector<double> block_loss_;             ///< per-block loss partials
  nn::Matrix batch_states_;                    ///< minibatch state rows
  nn::Matrix batch_next_states_;               ///< minibatch next-state rows
  nn::Matrix q_pred_;                          ///< online Q on states
  nn::Matrix target_next_q_;                   ///< target Q on next states
  nn::Matrix online_next_q_;                   ///< online Q on next states
  double grad_seconds_ = 0.0;                  ///< cumulative train_step time
};

/// Inference-only actor view of a DqnAgent for parallel actor-learner
/// training: owns a private copy of the online network, an exploration-rate
/// snapshot, and its own RNG stream, so N views can select actions from N
/// threads while the learner keeps training. A view never learns; sync()
/// republishes the learner's weights and exploration rate, reseed() derives
/// a fresh exploration stream (call it once per episode with the episode
/// seed to make action streams independent of thread scheduling).
class DqnActorView {
 public:
  explicit DqnActorView(const DqnAgent& learner);

  /// Re-copies policy weights and the current exploration rate.
  void sync(const DqnAgent& learner);
  /// Re-derives the exploration RNG stream from `seed`.
  void reseed(std::uint64_t seed) noexcept { rng_ = Rng(seed); }
  void set_exploration_enabled(bool enabled) noexcept { explore_ = enabled; }

  /// ε-greedy action with the snapshot policy (allocation-free hot path).
  [[nodiscard]] int act(std::span<const float> state, std::span<const std::uint8_t> mask);
  /// Greedy action with the snapshot policy.
  [[nodiscard]] int act_greedy(std::span<const float> state,
                               std::span<const std::uint8_t> mask) const;

  [[nodiscard]] double epsilon() const noexcept { return explore_ ? epsilon_ : 0.0; }

 private:
  nn::Mlp net_;
  std::size_t action_dim_;
  double epsilon_ = 0.0;
  bool explore_ = true;
  Rng rng_;
  mutable std::vector<float> q_;  ///< reusable Q-row scratch
};

}  // namespace vnfm::rl
