#include "rl/dqn.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "nn/loss.hpp"

namespace vnfm::rl {
namespace {

nn::MlpConfig network_config(const DqnConfig& config) {
  nn::MlpConfig net;
  net.input_dim = config.state_dim;
  net.hidden_dims = config.hidden_dims;
  net.output_dim = config.action_dim;
  net.activation = nn::Activation::kReLU;
  net.dueling = config.dueling;
  return net;
}

bool is_valid(std::span<const std::uint8_t> mask, std::size_t action) {
  return mask.empty() || mask[action] != 0;
}

}  // namespace

int greedy_masked_action(std::span<const float> q, std::span<const std::uint8_t> mask) {
  int best = -1;
  float best_value = -std::numeric_limits<float>::infinity();
  for (std::size_t a = 0; a < q.size(); ++a) {
    if (!is_valid(mask, a)) continue;
    if (q[a] > best_value) {
      best_value = q[a];
      best = static_cast<int>(a);
    }
  }
  if (best < 0) throw std::runtime_error("no valid action for greedy selection");
  return best;
}

int random_valid_action(std::span<const std::uint8_t> mask, std::size_t action_dim,
                        Rng& rng) {
  if (mask.empty()) return static_cast<int>(rng.uniform_index(action_dim));
  std::size_t valid_count = 0;
  for (const auto m : mask)
    if (m) ++valid_count;
  if (valid_count == 0) throw std::runtime_error("no valid action to sample");
  auto target = rng.uniform_index(valid_count);
  for (std::size_t a = 0; a < mask.size(); ++a) {
    if (!mask[a]) continue;
    if (target == 0) return static_cast<int>(a);
    --target;
  }
  return static_cast<int>(mask.size() - 1);
}

DqnAgent::DqnAgent(DqnConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      online_(network_config(config_)),
      target_(network_config(config_)),
      epsilon_schedule_(config_.epsilon_start, config_.epsilon_end, config_.epsilon_decay_steps),
      beta_schedule_(config_.per_beta0, 1.0, config_.epsilon_decay_steps * 4),
      pool_(std::make_unique<nn::GradWorkPool>(1)) {
  if (config_.state_dim == 0 || config_.action_dim == 0)
    throw std::invalid_argument("DQN needs non-zero state and action dims");
  online_.init(rng_);
  target_.copy_weights_from(online_);
  optimizer_ = std::make_unique<nn::Adam>(online_.parameters(),
                                          nn::Adam::Options{.learning_rate = config_.learning_rate});
  if (config_.prioritized_replay) {
    per_ = std::make_unique<PrioritizedReplay>(PrioritizedReplay::Options{
        .capacity = config_.replay_capacity,
        .alpha = config_.per_alpha,
        .beta = config_.per_beta0});
  } else {
    replay_ = std::make_unique<ReplayBuffer>(config_.replay_capacity);
  }
}

double DqnAgent::epsilon() const noexcept {
  return explore_ ? epsilon_schedule_.value(env_steps_) : 0.0;
}

std::size_t DqnAgent::replay_size() const noexcept {
  return per_ ? per_->size() : replay_->size();
}

int DqnAgent::act(std::span<const float> state, std::span<const std::uint8_t> mask) {
  const double eps = epsilon();
  ++env_steps_;
  if (explore_ && rng_.uniform() < eps)
    return random_valid_action(mask, config_.action_dim, rng_);
  online_.forward_row(state, q_scratch_);
  return greedy_masked_action(q_scratch_, mask);
}

int DqnAgent::act_greedy(std::span<const float> state,
                         std::span<const std::uint8_t> mask) const {
  online_.forward_row(state, q_scratch_);
  return greedy_masked_action(q_scratch_, mask);
}

void DqnAgent::act_greedy_block(
    const nn::Matrix& states, std::span<const std::vector<std::uint8_t>* const> masks,
    std::span<int> actions) const {
  const std::size_t n = states.rows();
  if (masks.size() != n || actions.size() != n)
    throw std::invalid_argument("act_greedy_block size mismatch");
  if (n == 0) return;
  if (n == 1) {
    // Single queued request: skip the batch staging and take the
    // allocation-free row path (same math, so same action).
    actions[0] = act_greedy(states.row(0),
                            masks[0] ? std::span<const std::uint8_t>(*masks[0])
                                     : std::span<const std::uint8_t>{});
    return;
  }
  online_.forward_batch(states, batch_q_, infer_ws_);
  for (std::size_t r = 0; r < n; ++r) {
    const auto mask = masks[r] ? std::span<const std::uint8_t>(*masks[r])
                               : std::span<const std::uint8_t>{};
    actions[r] = greedy_masked_action(batch_q_.row(r), mask);
  }
}

std::vector<float> DqnAgent::q_values(std::span<const float> state) const {
  return online_.forward_row(state);
}

void DqnAgent::push_to_replay(Transition t) {
  if (per_) {
    per_->push(std::move(t));
  } else {
    replay_->push(std::move(t));
  }
}

void DqnAgent::flush_n_step_buffer(bool episode_ended) {
  // Emit aggregated transitions from the front of the buffer. On episode
  // end every suffix is emitted (each with its shortened horizon); mid-
  // episode only a full n-step window is emitted.
  while (!n_step_buffer_.empty() &&
         (episode_ended || n_step_buffer_.size() >= config_.n_step)) {
    Transition aggregated = n_step_buffer_.front();
    float reward = 0.0F;
    float discount = 1.0F;
    for (const Transition& step : n_step_buffer_) {
      reward += discount * step.reward;
      discount *= config_.gamma;
    }
    const Transition& last = n_step_buffer_.back();
    aggregated.reward = reward;
    aggregated.next_state = last.next_state;
    aggregated.next_valid = last.next_valid;
    aggregated.done = last.done;
    aggregated.bootstrap_discount = discount;  // gamma^k for the window
    push_to_replay(std::move(aggregated));
    n_step_buffer_.erase(n_step_buffer_.begin());
  }
}

std::optional<double> DqnAgent::observe(Transition t) {
  if (t.state.size() != config_.state_dim || t.next_state.size() != config_.state_dim)
    throw std::invalid_argument("transition state dimension mismatch");
  if (config_.n_step <= 1) {
    push_to_replay(std::move(t));
  } else {
    const bool done = t.done;
    n_step_buffer_.push_back(std::move(t));
    flush_n_step_buffer(done);
  }
  if (replay_size() < config_.min_replay_before_training) return std::nullopt;
  if (config_.train_period == 0 || env_steps_ % config_.train_period != 0) return std::nullopt;
  return train_step();
}

std::optional<double> DqnAgent::ingest(Transition t) {
  ++env_steps_;  // the decision step happened in a detached actor
  return observe(std::move(t));
}

void DqnAgent::set_learner_threads(std::size_t workers) {
  if (workers == 0) workers = 1;
  if (pool_->workers() == workers) return;
  pool_ = std::make_unique<nn::GradWorkPool>(workers);
}

double DqnAgent::train_step() {
  if (replay_size() == 0) throw std::runtime_error("training with empty replay");
  const auto start = std::chrono::steady_clock::now();
  double loss = 0.0;
  if (per_) {
    per_->set_beta(beta_schedule_.value(grad_steps_));
    const auto sample = per_->sample(config_.batch_size, rng_);
    std::vector<float> td_errors;
    loss = train_on_batch(sample.transitions, sample.weights, &td_errors);
    per_->update_priorities(sample.indices, td_errors);
  } else {
    const auto batch = replay_->sample(config_.batch_size, rng_);
    loss = train_on_batch(batch, {}, nullptr);
  }
  ++grad_steps_;
  // With soft_target_tau > 0 the Polyak update already ran inside
  // train_on_batch's phased pool job; only the periodic hard copy is left.
  if (config_.soft_target_tau <= 0.0F && config_.target_update_period > 0 &&
      grad_steps_ % config_.target_update_period == 0) {
    target_.copy_weights_from(online_);
  }
  grad_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return loss;
}

double DqnAgent::train_on_batch(const std::vector<const Transition*>& batch,
                                std::span<const float> is_weights,
                                std::vector<float>* td_errors_out) {
  // Data-parallel gradient engine: the minibatch splits into fixed
  // nn::kGradBlockRows-row blocks; each block runs its forwards and its
  // backward independently (per-block gradient accumulator), and the
  // accumulators reduce in ascending block index afterwards. Block size and
  // reduction order are fixed, so the step is bit-identical for any worker
  // count (determinism invariant #8).
  const std::size_t n = batch.size();
  const std::size_t blocks = nn::grad_block_count(n);
  if (batch_states_.rows() != n || batch_states_.cols() != config_.state_dim) {
    batch_states_.resize(n, config_.state_dim);
    batch_next_states_.resize(n, config_.state_dim);
    q_pred_.resize(n, config_.action_dim);
    target_next_q_.resize(n, config_.action_dim);
    online_next_q_.resize(n, config_.action_dim);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(batch[i]->state.begin(), batch[i]->state.end(),
              batch_states_.row(i).begin());
    std::copy(batch[i]->next_state.begin(), batch[i]->next_state.end(),
              batch_next_states_.row(i).begin());
  }
  const std::size_t workers = pool_->workers();
  if (worker_scratch_.size() < workers) worker_scratch_.resize(workers);
  if (accums_.size() < blocks) accums_.resize(blocks);
  block_loss_.assign(blocks, 0.0);
  if (td_errors_out) td_errors_out->resize(n);

  auto run_block = [&](std::size_t b, std::size_t w) {
    const std::size_t row0 = b * nn::kGradBlockRows;
    const std::size_t rows = std::min(nn::kGradBlockRows, n - row0);
    WorkerScratch& ws = worker_scratch_[w];

    // Bootstrap targets. Double DQN selects argmax with the online net and
    // evaluates with the target net; vanilla DQN does both with the target.
    target_.forward_block(batch_next_states_, row0, rows, target_next_q_, ws.target);
    if (config_.double_dqn)
      online_.forward_block(batch_next_states_, row0, rows, online_next_q_,
                            ws.online_next);
    online_.forward_block(batch_states_, row0, rows, q_pred_, ws.online);

    ws.d_out.resize(rows, config_.action_dim);  // zeroed by resize
    double loss_partial = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = row0 + r;
      const Transition& t = *batch[i];
      float bootstrap = 0.0F;
      if (!t.done) {
        const auto mask = std::span<const std::uint8_t>(t.next_valid);
        if (config_.double_dqn) {
          const int best = greedy_masked_action(online_next_q_.row(i), mask);
          bootstrap = target_next_q_.at(i, static_cast<std::size_t>(best));
        } else {
          float best_value = -std::numeric_limits<float>::infinity();
          const auto q_row = target_next_q_.row(i);
          for (std::size_t a = 0; a < q_row.size(); ++a) {
            if (!is_valid(mask, a)) continue;
            best_value = std::max(best_value, q_row[a]);
          }
          bootstrap = best_value;
        }
      }
      const float discount =
          t.bootstrap_discount >= 0.0F ? t.bootstrap_discount : config_.gamma;
      const float target = t.reward + (t.done ? 0.0F : discount * bootstrap);

      // Masked Huber on the taken action only, normalised by the full-batch
      // active count (exactly one active action per row → n).
      const auto action = static_cast<std::size_t>(t.action);
      const float diff = q_pred_.at(i, action) - target;
      if (td_errors_out) (*td_errors_out)[i] = diff;
      const nn::HuberTerm huber =
          nn::huber_term(diff, config_.huber_delta, static_cast<double>(n));
      loss_partial += huber.loss;
      float g = huber.grad;
      if (!is_weights.empty()) g *= is_weights[i];
      ws.d_out.at(r, action) = g;
    }
    block_loss_[b] = loss_partial;

    accums_[b].reset(online_);
    online_.backward_block(ws.d_out, ws.online, accums_[b]);
  };
  // One pool wake carries the whole grad step: backward blocks, then the
  // Adam step, then (when configured) the target soft update — instead of a
  // wake per stage. The serial reduction below runs on the caller between
  // the barrier-separated phases.
  double loss = 0.0;
  auto reduce_then_begin_adam = [&] {
    // Fixed block-index reduction: the only cross-block float summation.
    online_.zero_grad();
    for (std::size_t b = 0; b < blocks; ++b) {
      online_.apply_gradients(accums_[b]);
      loss += block_loss_[b];
    }
    loss /= static_cast<double>(n);
    online_.clip_grad_norm(config_.grad_clip_norm);
    optimizer_->begin_step();
  };
  auto adam_block = [&](std::size_t b, std::size_t) { optimizer_->step_block(b); };
  auto soft_update_block = [&](std::size_t b, std::size_t) {
    target_.soft_update_block(online_, config_.soft_target_tau, b);
  };

  std::array<nn::GradWorkPool::Phase, 3> phases;
  std::size_t phase_count = 0;
  phases[phase_count++] = nn::GradWorkPool::make_phase(blocks, run_block);
  phases[phase_count++] = nn::GradWorkPool::make_phase(reduce_then_begin_adam,
                                                       optimizer_->block_count(), adam_block);
  if (config_.soft_target_tau > 0.0F)
    phases[phase_count++] =
        nn::GradWorkPool::make_phase(target_.param_block_count(), soft_update_block);
  pool_->run_phases({phases.data(), phase_count});
  return loss;
}

void DqnAgent::save_state(Serializer& out) const {
  out.begin_chunk("dqn_agent");
  // Config fingerprint: fields that change the serialized layout or the
  // learning algorithm — restoring a vanilla-DQN archive into a double-DQN
  // agent would silently resume with the wrong TD targets.
  out.write_u64(config_.state_dim);
  out.write_u64(config_.action_dim);
  out.write_bool(config_.prioritized_replay);
  out.write_u64(config_.n_step);
  out.write_bool(config_.double_dqn);
  out.write_bool(config_.dueling);
  out.write_u64(env_steps_);
  out.write_u64(grad_steps_);
  out.write_bool(explore_);
  save_rng(out, rng_);
  online_.save(out);
  target_.save(out);
  optimizer_->save(out);
  if (per_) {
    per_->save(out);
  } else {
    replay_->save(out);
  }
  out.write_u64(n_step_buffer_.size());
  for (const Transition& t : n_step_buffer_) save_transition(out, t);
  out.end_chunk();
}

void DqnAgent::load_state(Deserializer& in) {
  in.enter_chunk("dqn_agent");
  if (in.read_u64() != config_.state_dim || in.read_u64() != config_.action_dim ||
      in.read_bool() != config_.prioritized_replay || in.read_u64() != config_.n_step ||
      in.read_bool() != config_.double_dqn || in.read_bool() != config_.dueling)
    throw SerializeError("DQN config mismatch in checkpoint");
  env_steps_ = in.read_u64();
  grad_steps_ = in.read_u64();
  explore_ = in.read_bool();
  load_rng(in, rng_);
  online_.load(in);
  target_.load(in);
  optimizer_->load(in);
  if (per_) {
    per_->load(in);
  } else {
    replay_->load(in);
  }
  n_step_buffer_.clear();
  const std::uint64_t in_flight = in.read_u64();
  in.expect_items(in_flight, 41, "n-step buffer");
  n_step_buffer_.resize(in_flight);
  for (Transition& t : n_step_buffer_) t = load_transition(in);
  in.leave_chunk();
}

void DqnAgent::save(std::ostream& os) const { online_.save(os); }

void DqnAgent::load(std::istream& is) {
  nn::Mlp restored = nn::Mlp::load(is);
  online_.copy_weights_from(restored);
  target_.copy_weights_from(restored);
}

DqnActorView::DqnActorView(const DqnAgent& learner)
    : net_(learner.online_net().config()),
      action_dim_(learner.config().action_dim),
      rng_(learner.config().seed) {
  sync(learner);
}

void DqnActorView::sync(const DqnAgent& learner) {
  net_.copy_weights_from(learner.online_net());
  epsilon_ = learner.epsilon();
}

int DqnActorView::act(std::span<const float> state, std::span<const std::uint8_t> mask) {
  if (explore_ && rng_.uniform() < epsilon_)
    return random_valid_action(mask, action_dim_, rng_);
  net_.forward_row(state, q_);
  return greedy_masked_action(q_, mask);
}

int DqnActorView::act_greedy(std::span<const float> state,
                             std::span<const std::uint8_t> mask) const {
  net_.forward_row(state, q_);
  return greedy_masked_action(q_, mask);
}

}  // namespace vnfm::rl
