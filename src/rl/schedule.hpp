// Exploration-rate schedules.
#pragma once

#include <cstddef>

namespace vnfm::rl {

/// Linear interpolation from `start` to `end` over `horizon` steps, constant
/// afterwards. Used for epsilon-greedy decay and prioritised-replay beta.
class LinearSchedule {
 public:
  LinearSchedule(double start, double end, std::size_t horizon) noexcept
      : start_(start), end_(end), horizon_(horizon) {}

  [[nodiscard]] double value(std::size_t step) const noexcept {
    if (horizon_ == 0 || step >= horizon_) return end_;
    const double frac = static_cast<double>(step) / static_cast<double>(horizon_);
    return start_ + frac * (end_ - start_);
  }

 private:
  double start_;
  double end_;
  std::size_t horizon_;
};

/// Multiplicative decay: start * decay^step, floored at `end`.
class ExponentialSchedule {
 public:
  ExponentialSchedule(double start, double end, double decay) noexcept
      : start_(start), end_(end), decay_(decay) {}

  [[nodiscard]] double value(std::size_t step) const noexcept;

 private:
  double start_;
  double end_;
  double decay_;
};

}  // namespace vnfm::rl
