// First-order optimizers operating on Param views exposed by a network.
//
// Both optimizers expose a block API next to the classic step(): the update
// is elementwise, so the parameter tensors are split into fixed
// kOptBlockElems-element blocks (see grad_pool.hpp) and step_block(b) may
// run on any worker in any order — no float reduction crosses a block
// boundary, so every schedule is bit-identical to a serial step(). step()
// itself is begin_step() + all blocks in ascending order, so single-thread
// callers and checkpointed state are unchanged.
#pragma once

#include <vector>

#include "common/serialize.hpp"
#include "nn/grad_pool.hpp"
#include "nn/layers.hpp"

namespace vnfm::nn {

/// Plain SGD with optional momentum and L2 weight decay.
class Sgd {
 public:
  struct Options {
    float learning_rate = 1e-2F;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  Sgd(std::vector<Param*> params, Options options);

  /// Applies one update from the accumulated gradients (does not zero them).
  void step();

  /// Block API for phased GradWorkPool jobs: run begin_step() once on the
  /// caller, then step_block for every block in [0, block_count()) on any
  /// workers. Elementwise — bit-identical to step() for any schedule.
  void begin_step() noexcept {}
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }
  void step_block(std::size_t block) noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<Param*> params_;
  Options options_;
  std::vector<std::vector<float>> velocity_;
  std::vector<ElemBlock> blocks_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
    float weight_decay = 0.0F;
  };

  Adam(std::vector<Param*> params, Options options);

  /// Applies one update from the accumulated gradients (does not zero them).
  void step();

  /// Block API for phased GradWorkPool jobs: begin_step() advances the step
  /// counter and caches the bias corrections (serial, once per step — call
  /// it from the phase's prepare hook), then step_block for every block in
  /// [0, block_count()) on any workers. Elementwise — bit-identical to
  /// step() for any schedule.
  void begin_step() noexcept;
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }
  void step_block(std::size_t block) noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return step_count_; }

  /// Checkpoint write: first/second moments and the bias-correction step
  /// counter (exact bit patterns).
  void save(Serializer& out) const;
  /// Restores state written by save(); throws SerializeError when the moment
  /// shapes do not match this optimizer's parameters.
  void load(Deserializer& in);

 private:
  std::vector<Param*> params_;
  Options options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::vector<ElemBlock> blocks_;
  std::size_t step_count_ = 0;
  float bias1_ = 1.0F;  // cached by begin_step for step_block
  float bias2_ = 1.0F;
};

}  // namespace vnfm::nn
