// First-order optimizers operating on Param views exposed by a network.
#pragma once

#include <vector>

#include "common/serialize.hpp"
#include "nn/layers.hpp"

namespace vnfm::nn {

/// Plain SGD with optional momentum and L2 weight decay.
class Sgd {
 public:
  struct Options {
    float learning_rate = 1e-2F;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  Sgd(std::vector<Param*> params, Options options);

  /// Applies one update from the accumulated gradients (does not zero them).
  void step();

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<Param*> params_;
  Options options_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
    float weight_decay = 0.0F;
  };

  Adam(std::vector<Param*> params, Options options);

  /// Applies one update from the accumulated gradients (does not zero them).
  void step();

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return step_count_; }

  /// Checkpoint write: first/second moments and the bias-correction step
  /// counter (exact bit patterns).
  void save(Serializer& out) const;
  /// Restores state written by save(); throws SerializeError when the moment
  /// shapes do not match this optimizer's parameters.
  void load(Deserializer& in);

 private:
  std::vector<Param*> params_;
  Options options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t step_count_ = 0;
};

}  // namespace vnfm::nn
