// Trainable layers with explicit forward/backward passes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace vnfm::nn {

/// A trainable tensor: value plus accumulated gradient of the same shape.
struct Param {
  Matrix value;
  Matrix grad;

  void zero_grad() noexcept { grad.fill(0.0F); }
  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }
};

/// Fully connected layer Y = X * W^T + b with W stored as [out, in].
///
/// forward() caches the input so that a subsequent backward() can compute
/// parameter gradients; the cache is overwritten on every forward call, so
/// each forward must be paired with at most one backward. The cache is
/// mutable state: forward() is const (inference never changes the layer's
/// observable parameters) but is NOT safe to call concurrently on a shared
/// instance — give each thread its own copy.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  /// He/Xavier-style initialisation scaled for the following activation.
  void init(Rng& rng, float scale_numerator = 2.0F);

  /// Y = X W^T + b; X is (batch, in), result (batch, out).
  void forward(const Matrix& x, Matrix& y) const;

  /// Accumulates dW, db from cached X and d_out; writes d_in = d_out * W.
  void backward(const Matrix& d_out, Matrix& d_in);

  /// Cache-free forward for the block-parallel gradient engine: the same
  /// math as forward() but nothing is stored — the caller keeps `x` for
  /// backward_block. Safe to call concurrently on a shared instance.
  void forward_block(const Matrix& x, Matrix& y) const;

  /// Cache-free backward: accumulates dW into `dw_accum` and db into
  /// `db_accum` (shaped like weights().grad / bias().grad, caller-owned
  /// per-block accumulators) from the caller-kept input `x`, and writes
  /// d_in = d_out * W. `dw_scratch` is reusable workspace. Safe to call
  /// concurrently on a shared instance (parameters are only read).
  void backward_block(const Matrix& x, const Matrix& d_out, Matrix& dw_scratch,
                      Matrix& dw_accum, Matrix& db_accum, Matrix& d_in) const;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  Param& weights() noexcept { return w_; }
  Param& bias() noexcept { return b_; }
  [[nodiscard]] const Param& weights() const noexcept { return w_; }
  [[nodiscard]] const Param& bias() const noexcept { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param w_;  // [out, in]
  Param b_;  // [1, out]
  mutable Matrix cached_input_;  ///< backward cache; see class comment
};

enum class Activation : std::uint8_t { kReLU, kTanh, kIdentity };

const char* to_string(Activation a) noexcept;

/// Elementwise activation; caches pre-activation input for the backward pass
/// (mutable, so forward is const but not thread-safe on a shared instance).
class ActivationLayer {
 public:
  explicit ActivationLayer(Activation kind) noexcept : kind_(kind) {}

  void forward(const Matrix& x, Matrix& y) const;
  /// d_in = d_out ⊙ f'(cached pre-activation).
  void backward(const Matrix& d_out, Matrix& d_in) const;

  /// Cache-free forward (block-parallel engine); safe concurrently.
  void forward_block(const Matrix& x, Matrix& y) const;
  /// Cache-free backward from the caller-kept pre-activation `pre`:
  /// d_in = d_out ⊙ f'(pre). Safe concurrently.
  void backward_block(const Matrix& pre, const Matrix& d_out, Matrix& d_in) const;

  [[nodiscard]] Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  mutable Matrix cached_input_;
};

}  // namespace vnfm::nn
