#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace vnfm::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_(in_features), out_(out_features) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("linear layer with zero dimension");
  w_.value.resize(out_, in_);
  w_.grad.resize(out_, in_);
  b_.value.resize(1, out_);
  b_.grad.resize(1, out_);
}

void Linear::init(Rng& rng, float scale_numerator) {
  const float stddev = std::sqrt(scale_numerator / static_cast<float>(in_));
  for (float& w : w_.value.flat()) w = static_cast<float>(rng.normal()) * stddev;
  b_.value.fill(0.0F);
}

void Linear::forward(const Matrix& x, Matrix& y) const {
  cached_input_ = x;
  forward_block(x, y);
}

void Linear::forward_block(const Matrix& x, Matrix& y) const {
  if (x.cols() != in_) throw std::invalid_argument("linear forward shape mismatch");
  matmul_a_bt(x, w_.value, y);
  add_row_vector(y, b_.value.row(0));
}

void Linear::backward(const Matrix& d_out, Matrix& d_in) {
  if (d_out.cols() != out_ || d_out.rows() != cached_input_.rows())
    throw std::invalid_argument("linear backward shape mismatch");
  Matrix dw;
  backward_block(cached_input_, d_out, dw, w_.grad, b_.grad, d_in);
}

void Linear::backward_block(const Matrix& x, const Matrix& d_out, Matrix& dw_scratch,
                            Matrix& dw_accum, Matrix& db_accum, Matrix& d_in) const {
  if (d_out.cols() != out_ || d_out.rows() != x.rows())
    throw std::invalid_argument("linear backward shape mismatch");
  // dW += d_out^T * X  (shapes: (out,batch) x (batch,in) -> (out,in)).
  matmul_at_b(d_out, x, dw_scratch);
  axpy(1.0F, dw_scratch, dw_accum);
  column_sums(d_out, db_accum.row(0));
  // dX = d_out * W  (shapes: (batch,out) x (out,in) -> (batch,in)).
  matmul(d_out, w_.value, d_in);
}

const char* to_string(Activation a) noexcept {
  switch (a) {
    case Activation::kReLU: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

void ActivationLayer::forward(const Matrix& x, Matrix& y) const {
  cached_input_ = x;
  forward_block(x, y);
}

void ActivationLayer::backward(const Matrix& d_out, Matrix& d_in) const {
  backward_block(cached_input_, d_out, d_in);
}

void ActivationLayer::forward_block(const Matrix& x, Matrix& y) const {
  // Every branch below assigns every element: overwrite semantics, no memset.
  y.resize_for_overwrite(x.rows(), x.cols());
  const auto in = x.flat();
  const auto out = y.flat();
  switch (kind_) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] > 0.0F ? in[i] : 0.0F;
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
      break;
    case Activation::kIdentity:
      std::copy(in.begin(), in.end(), out.begin());
      break;
  }
}

void ActivationLayer::backward_block(const Matrix& pre_act, const Matrix& d_out,
                                     Matrix& d_in) const {
  if (d_out.rows() != pre_act.rows() || d_out.cols() != pre_act.cols())
    throw std::invalid_argument("activation backward shape mismatch");
  d_in.resize_for_overwrite(d_out.rows(), d_out.cols());
  const auto pre = pre_act.flat();
  const auto grad_out = d_out.flat();
  const auto grad_in = d_in.flat();
  switch (kind_) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < pre.size(); ++i)
        grad_in[i] = pre[i] > 0.0F ? grad_out[i] : 0.0F;
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < pre.size(); ++i) {
        const float t = std::tanh(pre[i]);
        grad_in[i] = grad_out[i] * (1.0F - t * t);
      }
      break;
    case Activation::kIdentity:
      std::copy(grad_out.begin(), grad_out.end(), grad_in.begin());
      break;
  }
}

}  // namespace vnfm::nn
