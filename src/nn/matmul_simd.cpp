// ISA-specific matmul kernels. See matmul_simd.hpp for the bit-identity
// rules. This translation unit is the only one compiled with -mavx2 on x86
// (CMakeLists.txt sets it per-source); matrix.cpp only calls into the AVX2
// entry points after a runtime __builtin_cpu_supports("avx2") check, so the
// rest of the binary keeps the baseline ISA.
#include "nn/matmul_simd.hpp"

#include "nn/matrix.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace vnfm::nn::detail {

bool avx2_compiled() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

bool neon_compiled() noexcept {
#if defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

namespace {

/// Reduce one 256-bit accumulator exactly the way the scalar kernel reduces
/// its 8 lanes (fixed combine tree), then fold in the k%8 scalar tail.
inline float reduce8_avx2(__m256 acc, const float* a_row, const float* b_row,
                          std::size_t k8, std::size_t k) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (std::size_t p = k8; p < k; ++p) sum += a_row[p] * b_row[p];
  return sum;
}

/// One (i, j) output cell of matmul_a_bt: the scalar kernel's 8-lane
/// accumulate (mul then add, never fma) plus the fixed combine tree.
inline float dot8_avx2(const float* a_row, const float* b_row, std::size_t k8,
                       std::size_t k) {
  __m256 acc = _mm256_setzero_ps();
  for (std::size_t p = 0; p < k8; p += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a_row + p), _mm256_loadu_ps(b_row + p));
    acc = _mm256_add_ps(acc, prod);
  }
  return reduce8_avx2(acc, a_row, b_row, k8, k);
}

}  // namespace

void matmul_avx2(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t n8 = n - (n % 8);
  const std::size_t k4 = k - (k % 4);
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out.row(i).data();
    const float* a_row = a.row(i).data();
    // out[j] += a_ip * b[j] is independent per element, so any vector width
    // is bit-identical to scalar as long as each product is mul-then-add (no
    // fma) and, for a fixed j, products are added in ascending-p order. The
    // 4-deep p unroll keeps that order — it only cuts out-row load/store
    // traffic by 4x and lets independent j iterations overlap.
    std::size_t p = 0;
    for (; p < k4; p += 4) {
      const float a_ip0 = a_row[p], a_ip1 = a_row[p + 1];
      const float a_ip2 = a_row[p + 2], a_ip3 = a_row[p + 3];
      const float* b0 = b.row(p).data();
      const float* b1 = b.row(p + 1).data();
      const float* b2 = b.row(p + 2).data();
      const float* b3 = b.row(p + 3).data();
      const __m256 av0 = _mm256_set1_ps(a_ip0), av1 = _mm256_set1_ps(a_ip1);
      const __m256 av2 = _mm256_set1_ps(a_ip2), av3 = _mm256_set1_ps(a_ip3);
      for (std::size_t j = 0; j < n8; j += 8) {
        __m256 acc = _mm256_loadu_ps(out_row + j);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av0, _mm256_loadu_ps(b0 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av1, _mm256_loadu_ps(b1 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av2, _mm256_loadu_ps(b2 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av3, _mm256_loadu_ps(b3 + j)));
        _mm256_storeu_ps(out_row + j, acc);
      }
      for (std::size_t j = n8; j < n; ++j) {
        float acc = out_row[j];
        acc += a_ip0 * b0[j];
        acc += a_ip1 * b1[j];
        acc += a_ip2 * b2[j];
        acc += a_ip3 * b3[j];
        out_row[j] = acc;
      }
    }
    for (; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b.row(p).data();
      const __m256 a_vec = _mm256_set1_ps(a_ip);
      for (std::size_t j = 0; j < n8; j += 8) {
        const __m256 prod = _mm256_mul_ps(a_vec, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(out_row + j, _mm256_add_ps(_mm256_loadu_ps(out_row + j), prod));
      }
      for (std::size_t j = n8; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

void matmul_at_b_avx2(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const std::size_t n8 = n - (n % 8);
  const std::size_t k4 = k - (k % 4);
  // Same contract as matmul_avx2: for a fixed (i, j), products are added in
  // ascending-p order (the scalar kernel's loop nest is p-outer), so the
  // 4-deep p unroll below is bit-identical.
  std::size_t p = 0;
  for (; p < k4; p += 4) {
    const float* a0 = a.row(p).data();
    const float* a1 = a.row(p + 1).data();
    const float* a2 = a.row(p + 2).data();
    const float* a3 = a.row(p + 3).data();
    const float* b0 = b.row(p).data();
    const float* b1 = b.row(p + 1).data();
    const float* b2 = b.row(p + 2).data();
    const float* b3 = b.row(p + 3).data();
    for (std::size_t i = 0; i < m; ++i) {
      float* out_row = out.row(i).data();
      const __m256 av0 = _mm256_set1_ps(a0[i]), av1 = _mm256_set1_ps(a1[i]);
      const __m256 av2 = _mm256_set1_ps(a2[i]), av3 = _mm256_set1_ps(a3[i]);
      for (std::size_t j = 0; j < n8; j += 8) {
        __m256 acc = _mm256_loadu_ps(out_row + j);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av0, _mm256_loadu_ps(b0 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av1, _mm256_loadu_ps(b1 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av2, _mm256_loadu_ps(b2 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av3, _mm256_loadu_ps(b3 + j)));
        _mm256_storeu_ps(out_row + j, acc);
      }
      for (std::size_t j = n8; j < n; ++j) {
        float acc = out_row[j];
        acc += a0[i] * b0[j];
        acc += a1[i] * b1[j];
        acc += a2[i] * b2[j];
        acc += a3[i] * b3[j];
        out_row[j] = acc;
      }
    }
  }
  for (; p < k; ++p) {
    const float* a_row = a.row(p).data();
    const float* b_row = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      float* out_row = out.row(i).data();
      const __m256 a_vec = _mm256_set1_ps(a_pi);
      for (std::size_t j = 0; j < n8; j += 8) {
        const __m256 prod = _mm256_mul_ps(a_vec, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(out_row + j, _mm256_add_ps(_mm256_loadu_ps(out_row + j), prod));
      }
      for (std::size_t j = n8; j < n; ++j) out_row[j] += a_pi * b_row[j];
    }
  }
}

void matmul_a_bt_avx2(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const std::size_t k8 = k - (k % 8);
  const std::size_t m2 = m - (m % 2);
  const std::size_t n4 = n - (n % 4);
  // Register-blocked 2x4 output tile: 8 independent accumulator chains hide
  // the vector-add latency that bounds a single chain. Each output cell
  // still accumulates its own lanes in ascending-p order with mul-then-add
  // and reduces through the fixed combine tree, so blocking changes WHICH
  // cells compute concurrently, never the order of any cell's additions —
  // bit-identical to the scalar kernel.
  for (std::size_t i = 0; i < m2; i += 2) {
    const float* a0 = a.row(i).data();
    const float* a1 = a.row(i + 1).data();
    float* o0 = out.row(i).data();
    float* o1 = out.row(i + 1).data();
    std::size_t j = 0;
    for (; j < n4; j += 4) {
      const float* b0 = b.row(j).data();
      const float* b1 = b.row(j + 1).data();
      const float* b2 = b.row(j + 2).data();
      const float* b3 = b.row(j + 3).data();
      __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
      __m256 acc02 = _mm256_setzero_ps(), acc03 = _mm256_setzero_ps();
      __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
      __m256 acc12 = _mm256_setzero_ps(), acc13 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k8; p += 8) {
        const __m256 av0 = _mm256_loadu_ps(a0 + p);
        const __m256 av1 = _mm256_loadu_ps(a1 + p);
        const __m256 bv0 = _mm256_loadu_ps(b0 + p);
        const __m256 bv1 = _mm256_loadu_ps(b1 + p);
        const __m256 bv2 = _mm256_loadu_ps(b2 + p);
        const __m256 bv3 = _mm256_loadu_ps(b3 + p);
        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av0, bv0));
        acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av0, bv1));
        acc02 = _mm256_add_ps(acc02, _mm256_mul_ps(av0, bv2));
        acc03 = _mm256_add_ps(acc03, _mm256_mul_ps(av0, bv3));
        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av1, bv0));
        acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av1, bv1));
        acc12 = _mm256_add_ps(acc12, _mm256_mul_ps(av1, bv2));
        acc13 = _mm256_add_ps(acc13, _mm256_mul_ps(av1, bv3));
      }
      o0[j] = reduce8_avx2(acc00, a0, b0, k8, k);
      o0[j + 1] = reduce8_avx2(acc01, a0, b1, k8, k);
      o0[j + 2] = reduce8_avx2(acc02, a0, b2, k8, k);
      o0[j + 3] = reduce8_avx2(acc03, a0, b3, k8, k);
      o1[j] = reduce8_avx2(acc10, a1, b0, k8, k);
      o1[j + 1] = reduce8_avx2(acc11, a1, b1, k8, k);
      o1[j + 2] = reduce8_avx2(acc12, a1, b2, k8, k);
      o1[j + 3] = reduce8_avx2(acc13, a1, b3, k8, k);
    }
    for (; j < n; ++j) {
      const float* b_row = b.row(j).data();
      o0[j] = dot8_avx2(a0, b_row, k8, k);
      o1[j] = dot8_avx2(a1, b_row, k8, k);
    }
  }
  for (std::size_t i = m2; i < m; ++i) {
    const float* a_row = a.row(i).data();
    float* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j)
      out_row[j] = dot8_avx2(a_row, b.row(j).data(), k8, k);
  }
}

#else  // !__AVX2__

void matmul_avx2(const Matrix&, const Matrix&, Matrix&) {}
void matmul_at_b_avx2(const Matrix&, const Matrix&, Matrix&) {}
void matmul_a_bt_avx2(const Matrix&, const Matrix&, Matrix&) {}

#endif

#if defined(__ARM_NEON)

void matmul_neon(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t n4 = n - (n % 4);
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out.row(i).data();
    const float* a_row = a.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b.row(p).data();
      // vmulq+vaddq, NOT vmlaq/vfmaq: the fused forms skip the intermediate
      // rounding and would diverge from the scalar kernel.
      const float32x4_t a_vec = vdupq_n_f32(a_ip);
      for (std::size_t j = 0; j < n4; j += 4) {
        const float32x4_t prod = vmulq_f32(a_vec, vld1q_f32(b_row + j));
        vst1q_f32(out_row + j, vaddq_f32(vld1q_f32(out_row + j), prod));
      }
      for (std::size_t j = n4; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

void matmul_at_b_neon(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const std::size_t n4 = n - (n % 4);
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p).data();
    const float* b_row = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      float* out_row = out.row(i).data();
      const float32x4_t a_vec = vdupq_n_f32(a_pi);
      for (std::size_t j = 0; j < n4; j += 4) {
        const float32x4_t prod = vmulq_f32(a_vec, vld1q_f32(b_row + j));
        vst1q_f32(out_row + j, vaddq_f32(vld1q_f32(out_row + j), prod));
      }
      for (std::size_t j = n4; j < n; ++j) out_row[j] += a_pi * b_row[j];
    }
  }
}

void matmul_a_bt_neon(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const std::size_t k8 = k - (k % 8);
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i).data();
    float* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j).data();
      // Two NEON quads hold the scalar kernel's 8 lanes (acc0 = l0..l3,
      // acc1 = l4..l7). vmulq+vaddq, never vmlaq/vfmaq — see above.
      float32x4_t acc0 = vdupq_n_f32(0.0F);
      float32x4_t acc1 = vdupq_n_f32(0.0F);
      for (std::size_t p = 0; p < k8; p += 8) {
        acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(a_row + p), vld1q_f32(b_row + p)));
        acc1 = vaddq_f32(acc1, vmulq_f32(vld1q_f32(a_row + p + 4), vld1q_f32(b_row + p + 4)));
      }
      float lanes[8];
      vst1q_f32(lanes, acc0);
      vst1q_f32(lanes + 4, acc1);
      float sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                  ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
      for (std::size_t p = k8; p < k; ++p) sum += a_row[p] * b_row[p];
      out_row[j] = sum;
    }
  }
}

#else  // !__ARM_NEON

void matmul_neon(const Matrix&, const Matrix&, Matrix&) {}
void matmul_at_b_neon(const Matrix&, const Matrix&, Matrix&) {}
void matmul_a_bt_neon(const Matrix&, const Matrix&, Matrix&) {}

#endif

}  // namespace vnfm::nn::detail
