#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace vnfm::nn {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  if (config_.input_dim == 0 || config_.output_dim == 0)
    throw std::invalid_argument("MLP needs non-zero input and output dims");
  std::size_t prev = config_.input_dim;
  for (const std::size_t h : config_.hidden_dims) {
    trunk_.emplace_back(prev, h);
    acts_.emplace_back(config_.activation);
    prev = h;
  }
  if (config_.dueling) {
    value_head_ = std::make_unique<Linear>(prev, 1);
    advantage_head_ = std::make_unique<Linear>(prev, config_.output_dim);
  } else {
    output_layer_ = std::make_unique<Linear>(prev, config_.output_dim);
  }
  pre_acts_.resize(trunk_.size());
  post_acts_.resize(trunk_.size());
  for (auto& layer : trunk_) {
    params_.push_back(&layer.weights());
    params_.push_back(&layer.bias());
  }
  if (config_.dueling) {
    params_.push_back(&value_head_->weights());
    params_.push_back(&value_head_->bias());
    params_.push_back(&advantage_head_->weights());
    params_.push_back(&advantage_head_->bias());
  } else {
    params_.push_back(&output_layer_->weights());
    params_.push_back(&output_layer_->bias());
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(params_.size());
  for (const Param* p : params_) sizes.push_back(p->size());
  elem_blocks_ = make_elem_blocks(sizes);
}

void Mlp::init(Rng& rng) {
  const float numerator = config_.activation == Activation::kReLU ? 2.0F : 1.0F;
  for (auto& layer : trunk_) layer.init(rng, numerator);
  // Output heads use a small Xavier-ish scale for stable initial Q-values.
  if (config_.dueling) {
    value_head_->init(rng, 1.0F);
    advantage_head_->init(rng, 1.0F);
  } else {
    output_layer_->init(rng, 1.0F);
  }
}

void Mlp::forward(const Matrix& input, Matrix& output) const {
  const Matrix* current = &input;
  for (std::size_t i = 0; i < trunk_.size(); ++i) {
    trunk_[i].forward(*current, pre_acts_[i]);
    acts_[i].forward(pre_acts_[i], post_acts_[i]);
    current = &post_acts_[i];
  }
  if (!config_.dueling) {
    output_layer_->forward(*current, output);
    return;
  }
  value_head_->forward(*current, value_out_);
  advantage_head_->forward(*current, adv_out_);
  const std::size_t batch = adv_out_.rows();
  const std::size_t actions = adv_out_.cols();
  output.resize_for_overwrite(batch, actions);
  for (std::size_t i = 0; i < batch; ++i) {
    const float* adv = adv_out_.row(i).data();
    float mean = 0.0F;
    for (std::size_t j = 0; j < actions; ++j) mean += adv[j];
    mean /= static_cast<float>(actions);
    const float value = value_out_.at(i, 0);
    float* out = output.row(i).data();
    for (std::size_t j = 0; j < actions; ++j) out[j] = value + adv[j] - mean;
  }
}

void GradAccumulator::reset(Mlp& net) {
  const auto& params = net.parameters();
  grads.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (grads[i].rows() != params[i]->grad.rows() ||
        grads[i].cols() != params[i]->grad.cols())
      grads[i].resize(params[i]->grad.rows(), params[i]->grad.cols());
    else
      grads[i].fill(0.0F);
  }
}

void Mlp::forward_batch(const Matrix& input, Matrix& output, MlpWorkspace& ws) const {
  if (output.rows() != input.rows() || output.cols() != config_.output_dim)
    output.resize(input.rows(), config_.output_dim);
  forward_block(input, 0, input.rows(), output, ws);
}

void Mlp::forward_block(const Matrix& input, std::size_t row_begin, std::size_t rows,
                        Matrix& output, MlpWorkspace& ws) const {
  if (row_begin + rows > input.rows() || input.cols() != config_.input_dim)
    throw std::invalid_argument("forward_block row range out of bounds");
  if (output.rows() != input.rows() || output.cols() != config_.output_dim)
    throw std::invalid_argument("forward_block output not pre-sized");
  if (ws.input.rows() != rows || ws.input.cols() != input.cols())
    ws.input.resize(rows, input.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto src = input.row(row_begin + r);
    std::copy(src.begin(), src.end(), ws.input.row(r).begin());
  }
  ws.pre_acts.resize(trunk_.size());
  ws.post_acts.resize(trunk_.size());
  const Matrix* current = &ws.input;
  for (std::size_t i = 0; i < trunk_.size(); ++i) {
    trunk_[i].forward_block(*current, ws.pre_acts[i]);
    acts_[i].forward_block(ws.pre_acts[i], ws.post_acts[i]);
    current = &ws.post_acts[i];
  }
  if (!config_.dueling) {
    output_layer_->forward_block(*current, ws.head_out);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = ws.head_out.row(r);
      std::copy(src.begin(), src.end(), output.row(row_begin + r).begin());
    }
    return;
  }
  value_head_->forward_block(*current, ws.value_out);
  advantage_head_->forward_block(*current, ws.adv_out);
  const std::size_t actions = ws.adv_out.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* adv = ws.adv_out.row(r).data();
    float mean = 0.0F;
    for (std::size_t j = 0; j < actions; ++j) mean += adv[j];
    mean /= static_cast<float>(actions);
    const float value = ws.value_out.at(r, 0);
    float* out = output.row(row_begin + r).data();
    for (std::size_t j = 0; j < actions; ++j) out[j] = value + adv[j] - mean;
  }
}

void Mlp::backward_block(const Matrix& d_output, MlpWorkspace& ws,
                         GradAccumulator& accum) const {
  if (d_output.rows() != ws.input.rows() || d_output.cols() != config_.output_dim)
    throw std::invalid_argument("backward_block shape mismatch");
  if (accum.grads.size() != params_.size())
    throw std::invalid_argument("backward_block accumulator not reset");
  // accum.grads indices mirror parameters(): trunk (w, b) pairs then heads.
  const std::size_t head = trunk_.size() * 2;
  const Matrix& last =
      trunk_.empty() ? ws.input : ws.post_acts[trunk_.size() - 1];
  if (config_.dueling) {
    const std::size_t rows = d_output.rows();
    const std::size_t actions = d_output.cols();
    // dV_i = sum_j dQ_ij ; dA_ij = dQ_ij - mean_j(dQ_ij).
    ws.d_value.resize_for_overwrite(rows, 1);
    ws.d_adv.resize_for_overwrite(rows, actions);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* dq = d_output.row(r).data();
      float sum = 0.0F;
      for (std::size_t j = 0; j < actions; ++j) sum += dq[j];
      ws.d_value.at(r, 0) = sum;
      const float mean = sum / static_cast<float>(actions);
      float* da = ws.d_adv.row(r).data();
      for (std::size_t j = 0; j < actions; ++j) da[j] = dq[j] - mean;
    }
    value_head_->backward_block(last, ws.d_value, ws.dw_scratch, accum.grads[head],
                                accum.grads[head + 1], ws.d_hidden);
    advantage_head_->backward_block(last, ws.d_adv, ws.dw_scratch,
                                    accum.grads[head + 2], accum.grads[head + 3],
                                    ws.d_hidden_adv);
    axpy(1.0F, ws.d_hidden_adv, ws.d_hidden);
  } else {
    output_layer_->backward_block(last, d_output, ws.dw_scratch, accum.grads[head],
                                  accum.grads[head + 1], ws.d_hidden);
  }
  for (std::size_t i = trunk_.size(); i-- > 0;) {
    acts_[i].backward_block(ws.pre_acts[i], ws.d_hidden, ws.d_pre);
    const Matrix& layer_in = i == 0 ? ws.input : ws.post_acts[i - 1];
    trunk_[i].backward_block(layer_in, ws.d_pre, ws.dw_scratch, accum.grads[2 * i],
                             accum.grads[2 * i + 1], ws.d_hidden);
  }
}

void Mlp::apply_gradients(const GradAccumulator& accum) {
  if (accum.grads.size() != params_.size())
    throw std::invalid_argument("apply_gradients accumulator shape mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i)
    axpy(1.0F, accum.grads[i], params_[i]->grad);
}

std::vector<float> Mlp::forward_row(std::span<const float> input) const {
  Matrix in = Matrix::from_row(input);
  Matrix out;
  forward(in, out);
  return {out.flat().begin(), out.flat().end()};
}

void Mlp::forward_row(std::span<const float> input, std::vector<float>& output) const {
  if (row_in_.cols() != input.size()) row_in_.resize(1, input.size());
  std::copy(input.begin(), input.end(), row_in_.row(0).begin());
  forward(row_in_, row_out_);
  output.assign(row_out_.flat().begin(), row_out_.flat().end());
}

void Mlp::backward(const Matrix& d_output) {
  Matrix d_hidden;
  if (config_.dueling) {
    const std::size_t batch = d_output.rows();
    const std::size_t actions = d_output.cols();
    // dV_i = sum_j dQ_ij ; dA_ij = dQ_ij - mean_j(dQ_ij).
    Matrix d_value(batch, 1);
    Matrix d_adv(batch, actions);
    for (std::size_t i = 0; i < batch; ++i) {
      const float* dq = d_output.row(i).data();
      float sum = 0.0F;
      for (std::size_t j = 0; j < actions; ++j) sum += dq[j];
      d_value.at(i, 0) = sum;
      const float mean = sum / static_cast<float>(actions);
      float* da = d_adv.row(i).data();
      for (std::size_t j = 0; j < actions; ++j) da[j] = dq[j] - mean;
    }
    Matrix d_hidden_value;
    Matrix d_hidden_adv;
    value_head_->backward(d_value, d_hidden_value);
    advantage_head_->backward(d_adv, d_hidden_adv);
    d_hidden = d_hidden_value;
    axpy(1.0F, d_hidden_adv, d_hidden);
  } else {
    output_layer_->backward(d_output, d_hidden);
  }
  for (std::size_t i = trunk_.size(); i-- > 0;) {
    Matrix d_pre;
    acts_[i].backward(d_hidden, d_pre);
    trunk_[i].backward(d_pre, d_hidden);
  }
}

std::vector<const Param*> Mlp::parameters() const {
  std::vector<const Param*> params;
  for (const auto& layer : trunk_) {
    params.push_back(&layer.weights());
    params.push_back(&layer.bias());
  }
  if (config_.dueling) {
    params.push_back(&std::as_const(*value_head_).weights());
    params.push_back(&std::as_const(*value_head_).bias());
    params.push_back(&std::as_const(*advantage_head_).weights());
    params.push_back(&std::as_const(*advantage_head_).bias());
  } else {
    params.push_back(&std::as_const(*output_layer_).weights());
    params.push_back(&std::as_const(*output_layer_).bias());
  }
  return params;
}

void Mlp::zero_grad() {
  for (Param* p : parameters()) p->zero_grad();
}

double Mlp::clip_grad_norm(double max_norm) {
  double total_sq = 0.0;
  for (Param* p : parameters())
    for (const float g : p->grad.flat()) total_sq += static_cast<double>(g) * g;
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (Param* p : parameters())
      for (float& g : p->grad.flat()) g *= scale;
  }
  return norm;
}

void Mlp::copy_weights_from(const Mlp& other) {
  auto dst = parameters();
  auto src = other.parameters();
  if (dst.size() != src.size()) throw std::invalid_argument("architecture mismatch in copy");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->value.size() != src[i]->value.size())
      throw std::invalid_argument("parameter shape mismatch in copy");
    std::copy(src[i]->value.flat().begin(), src[i]->value.flat().end(),
              dst[i]->value.flat().begin());
  }
}

void Mlp::soft_update_from(const Mlp& other, float tau) {
  if (params_.size() != other.params_.size())
    throw std::invalid_argument("architecture mismatch in update");
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i]->value.size() != other.params_[i]->value.size())
      throw std::invalid_argument("architecture mismatch in update");
  for (std::size_t b = 0; b < elem_blocks_.size(); ++b) soft_update_block(other, tau, b);
}

void Mlp::soft_update_block(const Mlp& other, float tau, std::size_t block) noexcept {
  const ElemBlock& eb = elem_blocks_[block];
  const auto d = params_[eb.param]->value.flat().subspan(eb.offset, eb.count);
  const auto s = other.params_[eb.param]->value.flat().subspan(eb.offset, eb.count);
  for (std::size_t j = 0; j < eb.count; ++j) d[j] = tau * s[j] + (1.0F - tau) * d[j];
}

void Mlp::save(std::ostream& os) const {
  os << "mlp-v1\n";
  os << config_.input_dim << ' ' << config_.hidden_dims.size();
  for (const std::size_t h : config_.hidden_dims) os << ' ' << h;
  os << ' ' << config_.output_dim << ' ' << static_cast<int>(config_.activation) << ' '
     << (config_.dueling ? 1 : 0) << '\n';
  for (const Param* p : parameters()) {
    os << p->value.rows() << ' ' << p->value.cols();
    for (const float v : p->value.flat()) os << ' ' << v;
    os << '\n';
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != "mlp-v1") throw std::runtime_error("bad MLP file magic: " + magic);
  MlpConfig config;
  std::size_t hidden_count = 0;
  is >> config.input_dim >> hidden_count;
  config.hidden_dims.resize(hidden_count);
  for (auto& h : config.hidden_dims) is >> h;
  int activation = 0;
  int dueling = 0;
  is >> config.output_dim >> activation >> dueling;
  config.activation = static_cast<Activation>(activation);
  config.dueling = dueling != 0;
  Mlp mlp(config);
  for (Param* p : mlp.parameters()) {
    std::size_t rows = 0, cols = 0;
    is >> rows >> cols;
    if (rows != p->value.rows() || cols != p->value.cols())
      throw std::runtime_error("MLP file shape mismatch");
    for (float& v : p->value.flat()) is >> v;
  }
  if (!is) throw std::runtime_error("truncated MLP file");
  return mlp;
}

void Mlp::save(Serializer& out) const {
  out.begin_chunk("mlp");
  out.write_u64(config_.input_dim);
  out.write_u64(config_.hidden_dims.size());
  for (const std::size_t h : config_.hidden_dims) out.write_u64(h);
  out.write_u64(config_.output_dim);
  out.write_u8(static_cast<std::uint8_t>(config_.activation));
  out.write_bool(config_.dueling);
  for (const Param* p : parameters()) {
    out.write_u64(p->value.rows());
    out.write_u64(p->value.cols());
    out.write_f32_vec(p->value.flat());
  }
  out.end_chunk();
}

void Mlp::load(Deserializer& in) {
  in.enter_chunk("mlp");
  MlpConfig config;
  config.input_dim = in.read_u64();
  const std::uint64_t hidden_count = in.read_u64();
  in.expect_items(hidden_count, 8, "hidden dims");
  config.hidden_dims.resize(hidden_count);
  for (auto& h : config.hidden_dims) h = in.read_u64();
  config.output_dim = in.read_u64();
  config.activation = static_cast<Activation>(in.read_u8());
  config.dueling = in.read_bool();
  if (config.input_dim != config_.input_dim || config.hidden_dims != config_.hidden_dims ||
      config.output_dim != config_.output_dim ||
      config.activation != config_.activation || config.dueling != config_.dueling)
    throw SerializeError("MLP architecture mismatch in checkpoint");
  for (Param* p : parameters()) {
    const std::size_t rows = in.read_u64();
    const std::size_t cols = in.read_u64();
    if (rows != p->value.rows() || cols != p->value.cols())
      throw SerializeError("MLP parameter shape mismatch in checkpoint");
    const auto values = in.read_f32_vec();
    if (values.size() != p->value.flat().size())
      throw SerializeError("MLP parameter size mismatch in checkpoint");
    std::copy(values.begin(), values.end(), p->value.flat().begin());
  }
  in.leave_chunk();
}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (const Param* p : parameters()) total += p->size();
  return total;
}

}  // namespace vnfm::nn
