// Internal: ISA-specific matmul kernel variants behind the dispatch in
// matrix.cpp. Not part of the public nn surface — include matrix.hpp.
//
// Every variant here must be bit-identical to the scalar reference kernels
// in matrix.cpp. The rules that make that possible:
//
//  * matmul_a_bt reduces each dot product in 8 fixed lanes combined by the
//    tree ((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7)). One 256-bit fp32 AVX2 vector
//    (or two NEON quads) holds exactly those 8 lanes, so vector mul+add per
//    iteration performs the same float operations in the same order as the
//    scalar unroll — only more of them per instruction.
//  * mul+add, never fma: a fused multiply-add skips the intermediate
//    rounding step of the separate multiply, producing different bits. The
//    SIMD translation units are compiled without FMA codegen
//    (-mavx2 only, -ffp-contract=off) and use explicit mul/add intrinsics.
//  * matmul / matmul_at_b accumulate independent output elements
//    (out[j] += a * b[j]); there is no cross-lane reduction, so any vector
//    width is bit-identical to scalar for free.
#pragma once

#include <cstddef>

namespace vnfm::nn {
class Matrix;
}  // namespace vnfm::nn

namespace vnfm::nn::detail {

// True when the AVX2 variants below were compiled into this binary (x86
// builds where the compiler accepted -mavx2). A runtime CPU check is still
// required before calling them.
[[nodiscard]] bool avx2_compiled() noexcept;
// True when the NEON variants were compiled in (aarch64: NEON is baseline).
[[nodiscard]] bool neon_compiled() noexcept;

// Compute-only kernel bodies: shape validation and output sizing/zeroing
// already happened in the public wrappers (matrix.cpp). Callers guarantee
// `out` is correctly sized, zero-filled for the accumulate kernels, and
// that the host supports the ISA.
void matmul_avx2(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_at_b_avx2(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_a_bt_avx2(const Matrix& a, const Matrix& b, Matrix& out);

void matmul_neon(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_at_b_neon(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_a_bt_neon(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace vnfm::nn::detail
