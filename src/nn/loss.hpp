// Scalar losses with analytic gradients for regression targets.
#pragma once

#include <cmath>

#include "nn/matrix.hpp"

namespace vnfm::nn {

/// One Huber element: loss contribution and d(loss)/d(pred) of a single
/// prediction error.
struct HuberTerm {
  double loss = 0.0;  ///< un-normalised loss contribution of this element
  float grad = 0.0F;  ///< gradient, already divided by `norm`
};

/// Huber (smooth-L1) loss/gradient of one element with error `diff` =
/// pred - target, threshold `delta`, and gradient normaliser `norm` (the
/// active-element count of the batch). This is the per-element definition
/// behind the DQN block-parallel gradient engine (one active action per
/// batch row; see rl/dqn.cpp) — its absolute numerics are pinned by unit
/// tests, which the cross-thread-count bit-identity tests cannot do.
[[nodiscard]] inline HuberTerm huber_term(float diff, float delta,
                                          double norm) noexcept {
  const float abs_diff = std::fabs(diff);
  if (abs_diff <= delta)
    return {0.5 * static_cast<double>(diff) * diff, static_cast<float>(diff / norm)};
  return {delta * (abs_diff - 0.5 * delta),
          static_cast<float>((diff > 0 ? delta : -delta) / norm)};
}

/// Mean squared error over all elements; writes d(loss)/d(pred) into grad.
/// Returns the loss value. Gradient is averaged over the element count.
double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

/// Huber (smooth-L1) loss with threshold delta; element-averaged. The DQN
/// learner applies the same per-element Huber inline in its block-parallel
/// gradient engine (one active action per row; see rl/dqn.cpp), where the
/// per-row form avoids materialising full target/mask matrices.
double huber_loss(const Matrix& pred, const Matrix& target, Matrix& grad, float delta = 1.0F);

}  // namespace vnfm::nn
