// Scalar losses with analytic gradients for regression targets.
#pragma once

#include "nn/matrix.hpp"

namespace vnfm::nn {

/// Mean squared error over all elements; writes d(loss)/d(pred) into grad.
/// Returns the loss value. Gradient is averaged over the element count.
double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

/// Huber (smooth-L1) loss with threshold delta; element-averaged.
double huber_loss(const Matrix& pred, const Matrix& target, Matrix& grad, float delta = 1.0F);

/// Masked Huber loss: only elements with mask != 0 contribute; averaged over
/// the number of active elements. Used for per-action TD updates where only
/// the taken action's Q-value receives a learning signal.
double masked_huber_loss(const Matrix& pred, const Matrix& target, const Matrix& mask,
                         Matrix& grad, float delta = 1.0F);

}  // namespace vnfm::nn
