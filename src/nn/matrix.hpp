// Dense row-major float matrix with the handful of kernels the MLP needs.
//
// This is deliberately not a general tensor library: the DQN workload is
// small batched GEMMs (batch x feature), so a cache-friendly ikj matmul and
// a few elementwise kernels are all that is required. Keeping the surface
// small makes the backprop code easy to audit.
#pragma once

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace vnfm::nn {

/// Row-major dense matrix of float.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return {data_.data(), data_.size()}; }

  void fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0F);
  }

  /// Builds a 1 x n matrix from a vector (for single-state forward passes).
  static Matrix from_row(std::span<const float> values);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b; shapes (m,k) x (k,n) -> (m,n). Aliasing is not allowed.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b; shapes (k,m) x (k,n) -> (m,n). Used for weight gradients.
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T; shapes (m,k) x (n,k) -> (m,n). Used for input gradients
/// and for the forward pass with row-major [out,in] weights.
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds a length-n bias row to every row of the (m,n) matrix.
void add_row_vector(Matrix& m, std::span<const float> bias);

/// Accumulates column sums of (m,n) into the length-n output span.
void column_sums(const Matrix& m, std::span<float> out);

/// out += scale * m (elementwise); shapes must match.
void axpy(float scale, const Matrix& m, Matrix& out);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace vnfm::nn
