// Dense row-major float matrix with the handful of kernels the MLP needs.
//
// This is deliberately not a general tensor library: the DQN workload is
// small batched GEMMs (batch x feature), so a cache-friendly ikj matmul and
// a few elementwise kernels are all that is required. Keeping the surface
// small makes the backprop code easy to audit.
//
// Kernel output contracts (each kernel states which it follows):
//
//  * WRITE kernels fully overwrite their output: every element is assigned,
//    so callers may hand them a matrix with unspecified contents
//    (`resize_for_overwrite`) and skip the O(mn) zero-fill.
//  * ACCUMULATE kernels add into their output. The matmul variants below
//    zero their own output internally before accumulating; `column_sums`
//    does not — it requires a caller-zeroed span so gradient blocks can sum
//    into one accumulator across calls.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace vnfm::nn {

/// Row-major dense matrix of float.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return {data_.data(), data_.size()}; }

  void fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes to (rows, cols) and zero-fills every element — on every call,
  /// even when the shape is unchanged. ACCUMULATE consumers (e.g. the d_out
  /// buffers the learners sum per-row loss gradients into) rely on this.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0F);
  }

  /// Reshapes to (rows, cols) WITHOUT zero-filling: element contents are
  /// unspecified afterwards. Only valid for outputs a WRITE kernel (or an
  /// explicit copy) fully overwrites before anything reads them. This is a
  /// no-op when the shape is already right, which removes the O(rows*cols)
  /// memset `resize` pays on every forward pass of the act/serve hot path.
  void resize_for_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Builds a 1 x n matrix from a vector (for single-state forward passes).
  static Matrix from_row(std::span<const float> values);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Vector instruction set the dispatched matmul kernels use on this host.
enum class SimdPath : std::uint8_t { kScalar, kAvx2, kNeon };

[[nodiscard]] const char* to_string(SimdPath path) noexcept;

/// Path the matmul kernels dispatch to, decided once per process from
/// compile-time ISA availability plus a runtime CPU check. Every path is
/// bit-identical to `kScalar` by construction (see matmul_simd.cpp).
[[nodiscard]] SimdPath matmul_simd_path() noexcept;

/// out = a * b; shapes (m,k) x (k,n) -> (m,n). Aliasing is not allowed.
/// ACCUMULATE kernel over a self-zeroed output: zeroes `out`, then adds
/// rank-1 updates in ascending p order; every zero `a` element still
/// contributes `0 * b` so non-finite values in `b` propagate instead of
/// being silently skipped.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b; shapes (k,m) x (k,n) -> (m,n). Used for weight gradients.
/// ACCUMULATE kernel over a self-zeroed output (same contract as `matmul`).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T; shapes (m,k) x (n,k) -> (m,n). Used for input gradients
/// and for the forward pass with row-major [out,in] weights.
/// WRITE kernel: every output element is assigned exactly once, so the
/// output is never pre-zeroed.
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// Reference scalar implementations of the three matmul kernels. The
/// dispatched SIMD paths are required to be bit-identical to these; tests
/// gate that equivalence (tests/nn/test_matrix.cpp).
void matmul_scalar(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_at_b_scalar(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_a_bt_scalar(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds a length-n bias row to every row of the (m,n) matrix (in place).
void add_row_vector(Matrix& m, std::span<const float> bias);

/// ACCUMULATE kernel: adds column sums of (m,n) into the length-n output
/// span. The span is NOT zeroed here — callers must zero it first (the
/// gradient accumulators sum several blocks into one span across calls).
void column_sums(const Matrix& m, std::span<float> out);

/// out += scale * m (elementwise); shapes must match.
void axpy(float scale, const Matrix& m, Matrix& out);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace vnfm::nn
