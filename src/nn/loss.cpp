#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace vnfm::nn {
namespace {

void check_same_shape(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("loss shape mismatch");
}

}  // namespace

double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  check_same_shape(pred, target);
  grad.resize(pred.rows(), pred.cols());
  const auto p = pred.flat();
  const auto t = target.flat();
  const auto g = grad.flat();
  const auto n = static_cast<double>(p.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double diff = static_cast<double>(p[i]) - t[i];
    loss += diff * diff;
    g[i] = static_cast<float>(2.0 * diff / n);
  }
  return loss / n;
}

double huber_loss(const Matrix& pred, const Matrix& target, Matrix& grad, float delta) {
  check_same_shape(pred, target);
  grad.resize(pred.rows(), pred.cols());
  const auto p = pred.flat();
  const auto t = target.flat();
  const auto g = grad.flat();
  const auto n = static_cast<double>(p.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float diff = p[i] - t[i];
    const float abs_diff = std::fabs(diff);
    if (abs_diff <= delta) {
      loss += 0.5 * static_cast<double>(diff) * diff;
      g[i] = static_cast<float>(diff / n);
    } else {
      loss += delta * (abs_diff - 0.5 * delta);
      g[i] = static_cast<float>((diff > 0 ? delta : -delta) / n);
    }
  }
  return loss / n;
}

}  // namespace vnfm::nn
