// GradWorkPool: the learner-side worker pool behind the deterministic
// data-parallel gradient engine.
//
// A minibatch gradient step splits its rows into fixed-size blocks of
// kGradBlockRows; the pool runs one forward+backward per block (each block
// writing its own gradient accumulator), and the caller reduces the
// per-block accumulators in ascending block index afterwards. Because the
// block size is a compile-time constant and the reduction order is fixed,
// the summed gradient is bit-identical for ANY worker count — workers only
// decide which CPU computes a block, never what the block computes or the
// order partial sums combine (determinism invariant #8 in
// docs/ARCHITECTURE.md).
//
// The same engine now carries a grad step past the gradient: `run_phases`
// batches the backward pass, the optimizer step, and the target-network
// soft update into ONE pool wake, with a serial `prepare` hook (gradient
// reduction, grad clipping, Adam bias bookkeeping) between phases. The
// elementwise phases split parameters into fixed kOptBlockElems-element
// blocks — elementwise updates have no cross-element float reduction, so
// any schedule of those blocks is bit-identical by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

namespace vnfm::nn {

/// Rows per gradient block. Part of the numeric definition of a training
/// run (like the 8-lane split in matmul_a_bt): changing it changes where
/// float partial sums combine and therefore the results — it must never be
/// derived from the worker count or hardware.
inline constexpr std::size_t kGradBlockRows = 8;

/// Number of kGradBlockRows-sized blocks covering `rows` rows.
[[nodiscard]] constexpr std::size_t grad_block_count(std::size_t rows) noexcept {
  return (rows + kGradBlockRows - 1) / kGradBlockRows;
}

/// Elements per optimizer / soft-update block. Unlike kGradBlockRows this
/// one does NOT affect numerics (the updates are elementwise — no float
/// reduction crosses a block boundary, so any split is bit-identical); it
/// is still a fixed compile-time constant so scheduling remains the only
/// thing worker count can change.
inline constexpr std::size_t kOptBlockElems = 4096;

/// One fixed-size slice of a parameter list's flattened elements:
/// `count` elements starting at `offset` within parameter `param`.
struct ElemBlock {
  std::size_t param = 0;
  std::size_t offset = 0;
  std::size_t count = 0;
};

/// Splits parameters of the given sizes into kOptBlockElems-element blocks
/// (last block of each parameter may be short). Block order is ascending
/// (param, offset) — fixed, like everything else that touches numerics.
[[nodiscard]] std::vector<ElemBlock> make_elem_blocks(std::span<const std::size_t> sizes);

/// A small persistent worker pool executing per-block closures. The calling
/// thread participates as worker 0; `workers - 1` helper threads are spawned
/// once and parked between jobs, so a pool adds no per-step thread-creation
/// cost. With workers == 1 every job runs inline on the caller and no thread
/// is ever spawned — the 1-worker pool is the sequential path.
class GradWorkPool {
 public:
  using BlockFn = void (*)(void* ctx, std::size_t block, std::size_t worker);
  using SerialFn = void (*)(void* ctx);

  /// One phase of a batched job: an optional serial `prepare` hook run on
  /// the caller after the previous phase fully completed, then `blocks`
  /// parallel invocations of `invoke`. Build instances with `make_phase`.
  struct Phase {
    std::size_t blocks = 0;
    BlockFn invoke = nullptr;
    void* ctx = nullptr;
    SerialFn prepare = nullptr;
    void* prepare_ctx = nullptr;
  };

  /// Creates a pool of `workers` workers (>= 1; 0 is clamped to 1).
  explicit GradWorkPool(std::size_t workers);
  ~GradWorkPool();

  GradWorkPool(const GradWorkPool&) = delete;
  GradWorkPool& operator=(const GradWorkPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Runs fn(block, worker) for every block in [0, blocks), distributing
  /// blocks dynamically over the workers, and returns once all blocks are
  /// done. `worker` is in [0, workers()) and identifies reusable per-worker
  /// scratch; which worker runs which block is scheduling-dependent, so fn
  /// must write per-BLOCK outputs only (per-worker state must not leak into
  /// results). Exceptions thrown by fn are rethrown here after the job ends.
  /// fn is invoked through a raw function-pointer trampoline (no
  /// std::function), so submitting a job allocates nothing — this runs once
  /// per gradient step on the training hot path.
  template <typename Fn>
  void run(std::size_t blocks, Fn&& fn) {
    const Phase phase = make_phase(blocks, fn);
    run_phases({&phase, 1});
  }

  /// Runs a sequence of phases as ONE pool job (a single wake/park
  /// handshake instead of one per phase). For each phase, in order: the
  /// previous phase's blocks all complete (a barrier — later phases may
  /// read what earlier ones wrote), the phase's serial `prepare` hook runs
  /// on the calling thread, then its blocks are distributed over the
  /// workers like `run`. If no phase has at least `workers()` blocks the
  /// whole job runs inline on the caller — helper threads could not shorten
  /// the critical path, and the wake/park handshake would only add latency.
  /// The inline and pooled paths execute the same blocks with the same
  /// decomposition, so results are bit-identical either way. The first
  /// exception (from a prepare hook or a block) aborts remaining work and
  /// is rethrown here.
  void run_phases(std::span<const Phase> phases);

  /// Builds a Phase from lvalue callables (they must outlive run_phases).
  template <typename Fn>
  [[nodiscard]] static Phase make_phase(std::size_t blocks, Fn& fn) {
    return Phase{blocks, &block_trampoline<Fn>, std::addressof(fn), nullptr, nullptr};
  }
  template <typename Prep, typename Fn>
  [[nodiscard]] static Phase make_phase(Prep& prepare, std::size_t blocks, Fn& fn) {
    return Phase{blocks, &block_trampoline<Fn>, std::addressof(fn), &serial_trampoline<Prep>,
                 std::addressof(prepare)};
  }

 private:
  template <typename Fn>
  static void block_trampoline(void* ctx, std::size_t block, std::size_t worker) {
    (*static_cast<std::remove_reference_t<Fn>*>(ctx))(block, worker);
  }
  template <typename Fn>
  static void serial_trampoline(void* ctx) {
    (*static_cast<std::remove_reference_t<Fn>*>(ctx))();
  }

  void worker_loop(std::size_t worker);
  void run_blocks(std::size_t phase, std::size_t worker);
  void record_error(std::size_t worker) noexcept;
  void ensure_phase_capacity(std::size_t phases);

  std::size_t workers_;
  std::vector<std::thread> helpers_;  // workers_ - 1 parked threads

  std::mutex mutex_;
  std::condition_variable start_cv_;  // new job + phase-open gate
  std::condition_variable done_cv_;   // per-phase completion + job drain
  const Phase* job_phases_ = nullptr;
  std::size_t job_phase_count_ = 0;
  std::size_t phases_open_ = 0;  // phases whose blocks may be claimed
  // Per-phase claim/done counters. Kept per phase (not one shared counter)
  // so a straggler worker finishing its last claim of phase p can never
  // race with the counter of phase p+1.
  std::size_t phase_capacity_ = 0;
  std::unique_ptr<std::atomic<std::size_t>[]> phase_next_;
  std::unique_ptr<std::atomic<std::size_t>[]> phase_done_;
  std::atomic<bool> abort_{false};
  std::size_t helpers_running_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace vnfm::nn
