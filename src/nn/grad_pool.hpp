// GradWorkPool: the learner-side worker pool behind the deterministic
// data-parallel gradient engine.
//
// A minibatch gradient step splits its rows into fixed-size blocks of
// kGradBlockRows; the pool runs one forward+backward per block (each block
// writing its own gradient accumulator), and the caller reduces the
// per-block accumulators in ascending block index afterwards. Because the
// block size is a compile-time constant and the reduction order is fixed,
// the summed gradient is bit-identical for ANY worker count — workers only
// decide which CPU computes a block, never what the block computes or the
// order partial sums combine (determinism invariant #8 in
// docs/ARCHITECTURE.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vnfm::nn {

/// Rows per gradient block. Part of the numeric definition of a training
/// run (like the 8-lane split in matmul_a_bt): changing it changes where
/// float partial sums combine and therefore the results — it must never be
/// derived from the worker count or hardware.
inline constexpr std::size_t kGradBlockRows = 8;

/// Number of kGradBlockRows-sized blocks covering `rows` rows.
[[nodiscard]] constexpr std::size_t grad_block_count(std::size_t rows) noexcept {
  return (rows + kGradBlockRows - 1) / kGradBlockRows;
}

/// A small persistent worker pool executing per-block closures. The calling
/// thread participates as worker 0; `workers - 1` helper threads are spawned
/// once and parked between jobs, so a pool adds no per-step thread-creation
/// cost. With workers == 1 every job runs inline on the caller and no thread
/// is ever spawned — the 1-worker pool is the sequential path.
class GradWorkPool {
 public:
  /// Creates a pool of `workers` workers (>= 1; 0 is clamped to 1).
  explicit GradWorkPool(std::size_t workers);
  ~GradWorkPool();

  GradWorkPool(const GradWorkPool&) = delete;
  GradWorkPool& operator=(const GradWorkPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Runs fn(block, worker) for every block in [0, blocks), distributing
  /// blocks dynamically over the workers, and returns once all blocks are
  /// done. `worker` is in [0, workers()) and identifies reusable per-worker
  /// scratch; which worker runs which block is scheduling-dependent, so fn
  /// must write per-BLOCK outputs only (per-worker state must not leak into
  /// results). Exceptions thrown by fn are rethrown here after the job ends.
  /// fn is invoked through a raw function-pointer trampoline (no
  /// std::function), so submitting a job allocates nothing — this runs once
  /// per gradient step on the training hot path.
  template <typename Fn>
  void run(std::size_t blocks, Fn&& fn) {
    run_impl(
        blocks,
        [](void* ctx, std::size_t block, std::size_t worker) {
          (*static_cast<std::remove_reference_t<Fn>*>(ctx))(block, worker);
        },
        std::addressof(fn));
  }

 private:
  using BlockFn = void (*)(void* ctx, std::size_t block, std::size_t worker);

  void run_impl(std::size_t blocks, BlockFn invoke, void* ctx);
  void worker_loop(std::size_t worker);

  std::size_t workers_;
  std::vector<std::thread> helpers_;  // workers_ - 1 parked threads

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  BlockFn job_invoke_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_blocks_ = 0;
  std::atomic<std::size_t> next_block_{0};
  std::size_t helpers_running_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace vnfm::nn
