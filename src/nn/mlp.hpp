// Multi-layer perceptron with manual backprop and an optional dueling head.
//
// This is the Q-network used by the DRL VNF manager. With `dueling` enabled
// the final hidden representation H feeds two linear heads,
//   V = H Wv^T + bv   (batch, 1)
//   A = H Wa^T + ba   (batch, actions)
//   Q = V + A - mean_a(A)
// which matches the dueling architecture of Wang et al. (2016) that the
// paper-era toolbox uses as an ablation.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/grad_pool.hpp"
#include "nn/layers.hpp"

namespace vnfm::nn {

struct MlpConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> hidden_dims;
  std::size_t output_dim = 0;
  Activation activation = Activation::kReLU;
  bool dueling = false;
};

class Mlp;

/// Per-worker reusable workspace for the block-parallel gradient engine
/// (forward caches for one row block plus backward scratch). One worker
/// reuses its workspace across blocks and steps, so the hot path is
/// allocation-free after warm-up; workspace contents are fully rewritten by
/// every forward_block, so they can never leak one block's data into
/// another (which would break worker-count invariance).
struct MlpWorkspace {
  Matrix input;                   ///< copy of the block's input rows
  std::vector<Matrix> pre_acts;   ///< per-trunk-layer pre-activations
  std::vector<Matrix> post_acts;  ///< per-trunk-layer post-activations
  Matrix value_out;               ///< dueling value head output
  Matrix adv_out;                 ///< dueling advantage head output
  Matrix head_out;                ///< non-dueling head output
  Matrix d_hidden;                ///< backward: gradient flowing into trunk
  Matrix d_pre;                   ///< backward: pre-activation gradient
  Matrix d_value;                 ///< dueling backward: value-head grad
  Matrix d_adv;                   ///< dueling backward: advantage-head grad
  Matrix d_hidden_adv;            ///< dueling backward: advantage branch
  Matrix dw_scratch;              ///< per-layer dW staging
};

/// Per-BLOCK gradient accumulator of the block-parallel engine: one matrix
/// per Mlp parameter (same order as Mlp::parameters()). Each block writes
/// its own accumulator; Mlp::apply_gradients reduces them into the
/// network's parameter gradients in ascending block index — the fixed
/// block-reduction order that makes the summed gradient independent of the
/// worker count.
struct GradAccumulator {
  /// One gradient matrix per parameter, Mlp::parameters() order.
  std::vector<Matrix> grads;

  /// Sizes `grads` to match `net`'s parameters and zeroes every entry
  /// (cheap after the first call: shapes are stable, so no reallocation).
  void reset(Mlp& net);
};

class Mlp {
 public:
  explicit Mlp(MlpConfig config);

  /// Initialises all weights from the generator (He init for ReLU trunks).
  void init(Rng& rng);

  /// Forward pass; input (batch, input_dim) -> output (batch, output_dim).
  /// Caches intermediate activations for one backward pass. Const because
  /// inference never mutates parameters, but the caches make it unsafe to
  /// call concurrently on a shared instance — each thread needs its own Mlp.
  void forward(const Matrix& input, Matrix& output) const;

  /// Convenience single-row forward.
  [[nodiscard]] std::vector<float> forward_row(std::span<const float> input) const;

  /// Allocation-free single-row forward for per-decision hot paths (actor
  /// action selection): reuses internal scratch matrices and writes the
  /// Q-row into `output` (resized to output_dim).
  void forward_row(std::span<const float> input, std::vector<float>& output) const;

  /// Accumulates parameter gradients from d(loss)/d(output).
  void backward(const Matrix& d_output);

  // ---- Block-parallel gradient engine (see nn/grad_pool.hpp) ---------------
  // forward_block/backward_block touch no Mlp state (all caches live in the
  // caller's workspace), so N workers can run them concurrently on a shared
  // network. forward_block is bit-identical to forward() on the same rows —
  // every forward op is per-row — and the 1-worker blocked backward defines
  // the reference numerics that any worker count reproduces exactly.

  /// Batched inference entry point (serving engine): forward over ALL rows
  /// of `input` through caller-owned caches, resizing `output` to
  /// (input.rows(), output_dim). A thin wrapper over forward_block, so it is
  /// bit-identical to forward()/forward_row() on the same rows, allocation-
  /// free once `ws` and `output` are warm, and safe to call concurrently on
  /// a shared net as long as every caller owns its workspace — which lets N
  /// serving shards batch cross-request decisions through one network clone
  /// without any Mlp-internal cache contention.
  void forward_batch(const Matrix& input, Matrix& output, MlpWorkspace& ws) const;

  /// Forward over rows [row_begin, row_begin + rows) of `input`, writing the
  /// same rows of `output` (pre-sized to (batch, output_dim) by the caller;
  /// blocks write disjoint rows, so concurrent calls may share `output`).
  /// Caches the block's activations in `ws` for a following backward_block.
  void forward_block(const Matrix& input, std::size_t row_begin, std::size_t rows,
                     Matrix& output, MlpWorkspace& ws) const;

  /// Backward for the block most recently run through forward_block with
  /// `ws`: `d_output` holds d(loss)/d(output) for the block's rows only
  /// (rows x output_dim). Accumulates parameter gradients into `accum`
  /// (which the caller reset() beforehand).
  void backward_block(const Matrix& d_output, MlpWorkspace& ws,
                      GradAccumulator& accum) const;

  /// Adds `accum`'s gradients onto the parameters' grad fields. Callers
  /// reduce per-block accumulators in ascending block index — the fixed
  /// reduction order of determinism invariant #8.
  void apply_gradients(const GradAccumulator& accum);

  /// All trainable parameters (stable order; same order across clones).
  /// The list is built once at construction — the gradient engine reads it
  /// per block, so it must not allocate per call.
  [[nodiscard]] const std::vector<Param*>& parameters() noexcept { return params_; }
  [[nodiscard]] std::vector<const Param*> parameters() const;

  void zero_grad();

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  /// Copies weights from another network with identical architecture.
  void copy_weights_from(const Mlp& other);

  /// Polyak averaging: w <- tau * other.w + (1 - tau) * w.
  void soft_update_from(const Mlp& other, float tau);

  /// Number of fixed kOptBlockElems-element blocks covering all parameters
  /// (the soft-update parallelism unit; see soft_update_block).
  [[nodiscard]] std::size_t param_block_count() const noexcept { return elem_blocks_.size(); }

  /// Polyak-averages one element block (split as in param_block_count()).
  /// Elementwise, so running the blocks on any workers in any order is
  /// bit-identical to soft_update_from — which is implemented as exactly
  /// these blocks in ascending order. Skips soft_update_from's architecture
  /// validation; callers pair networks they already know are clones.
  void soft_update_block(const Mlp& other, float tau, std::size_t block) noexcept;

  /// Serialises config + weights (portable text format).
  void save(std::ostream& os) const;
  /// Restores a network previously written by save().
  static Mlp load(std::istream& is);

  /// Binary checkpoint write: architecture + exact weight bit patterns
  /// (unlike the text format, restoring is bit-identical).
  void save(Serializer& out) const;
  /// Restores weights written by save(Serializer&) into this network;
  /// throws SerializeError when the archived architecture differs.
  void load(Deserializer& in);

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  MlpConfig config_;
  std::vector<Linear> trunk_;
  std::vector<ActivationLayer> acts_;
  std::unique_ptr<Linear> value_head_;      // dueling only
  std::unique_ptr<Linear> advantage_head_;  // dueling only
  std::unique_ptr<Linear> output_layer_;    // non-dueling only
  // Cached parameter list (trunk (w,b) pairs then heads), built once in the
  // constructor. The pointees live in trunk_'s heap buffer and the head
  // unique_ptrs, so the pointers stay valid under move.
  std::vector<Param*> params_;
  // Fixed element-block split over params_ (soft_update_block), built once.
  std::vector<ElemBlock> elem_blocks_;

  // Forward caches (mutable: forward is const but not thread-safe; see
  // forward's comment).
  mutable std::vector<Matrix> pre_acts_;
  mutable std::vector<Matrix> post_acts_;
  mutable Matrix value_out_;
  mutable Matrix adv_out_;
  // Single-row scratch for the allocation-free forward_row overload.
  mutable Matrix row_in_;
  mutable Matrix row_out_;
};

}  // namespace vnfm::nn
