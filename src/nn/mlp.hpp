// Multi-layer perceptron with manual backprop and an optional dueling head.
//
// This is the Q-network used by the DRL VNF manager. With `dueling` enabled
// the final hidden representation H feeds two linear heads,
//   V = H Wv^T + bv   (batch, 1)
//   A = H Wa^T + ba   (batch, actions)
//   Q = V + A - mean_a(A)
// which matches the dueling architecture of Wang et al. (2016) that the
// paper-era toolbox uses as an ablation.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/layers.hpp"

namespace vnfm::nn {

struct MlpConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> hidden_dims;
  std::size_t output_dim = 0;
  Activation activation = Activation::kReLU;
  bool dueling = false;
};

class Mlp {
 public:
  explicit Mlp(MlpConfig config);

  /// Initialises all weights from the generator (He init for ReLU trunks).
  void init(Rng& rng);

  /// Forward pass; input (batch, input_dim) -> output (batch, output_dim).
  /// Caches intermediate activations for one backward pass. Const because
  /// inference never mutates parameters, but the caches make it unsafe to
  /// call concurrently on a shared instance — each thread needs its own Mlp.
  void forward(const Matrix& input, Matrix& output) const;

  /// Convenience single-row forward.
  [[nodiscard]] std::vector<float> forward_row(std::span<const float> input) const;

  /// Allocation-free single-row forward for per-decision hot paths (actor
  /// action selection): reuses internal scratch matrices and writes the
  /// Q-row into `output` (resized to output_dim).
  void forward_row(std::span<const float> input, std::vector<float>& output) const;

  /// Accumulates parameter gradients from d(loss)/d(output).
  void backward(const Matrix& d_output);

  /// All trainable parameters (stable order; same order across clones).
  [[nodiscard]] std::vector<Param*> parameters();
  [[nodiscard]] std::vector<const Param*> parameters() const;

  void zero_grad();

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  /// Copies weights from another network with identical architecture.
  void copy_weights_from(const Mlp& other);

  /// Polyak averaging: w <- tau * other.w + (1 - tau) * w.
  void soft_update_from(const Mlp& other, float tau);

  /// Serialises config + weights (portable text format).
  void save(std::ostream& os) const;
  /// Restores a network previously written by save().
  static Mlp load(std::istream& is);

  /// Binary checkpoint write: architecture + exact weight bit patterns
  /// (unlike the text format, restoring is bit-identical).
  void save(Serializer& out) const;
  /// Restores weights written by save(Serializer&) into this network;
  /// throws SerializeError when the archived architecture differs.
  void load(Deserializer& in);

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  MlpConfig config_;
  std::vector<Linear> trunk_;
  std::vector<ActivationLayer> acts_;
  std::unique_ptr<Linear> value_head_;      // dueling only
  std::unique_ptr<Linear> advantage_head_;  // dueling only
  std::unique_ptr<Linear> output_layer_;    // non-dueling only

  // Forward caches (mutable: forward is const but not thread-safe; see
  // forward's comment).
  mutable std::vector<Matrix> pre_acts_;
  mutable std::vector<Matrix> post_acts_;
  mutable Matrix value_out_;
  mutable Matrix adv_out_;
  // Single-row scratch for the allocation-free forward_row overload.
  mutable Matrix row_in_;
  mutable Matrix row_out_;
};

}  // namespace vnfm::nn
