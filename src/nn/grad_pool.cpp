#include "nn/grad_pool.hpp"

namespace vnfm::nn {

GradWorkPool::GradWorkPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  errors_.resize(workers_);
  helpers_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w)
    helpers_.emplace_back([this, w] { worker_loop(w); });
}

GradWorkPool::~GradWorkPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& helper : helpers_) helper.join();
}

void GradWorkPool::run_impl(std::size_t blocks, BlockFn invoke, void* ctx) {
  if (blocks == 0) return;
  if (workers_ == 1 || blocks == 1) {
    // Sequential path: same block decomposition, no synchronisation at all.
    for (std::size_t b = 0; b < blocks; ++b) invoke(ctx, b, 0);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_invoke_ = invoke;
    job_ctx_ = ctx;
    job_blocks_ = blocks;
    next_block_.store(0, std::memory_order_relaxed);
    helpers_running_ = helpers_.size();
    ++generation_;
    for (auto& error : errors_) error = nullptr;
  }
  start_cv_.notify_all();

  // The caller is worker 0.
  try {
    while (true) {
      const std::size_t b = next_block_.fetch_add(1);
      if (b >= blocks) break;
      invoke(ctx, b, 0);
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    errors_[0] = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return helpers_running_ == 0; });
  job_invoke_ = nullptr;
  job_ctx_ = nullptr;
  for (const auto& error : errors_)
    if (error) std::rethrow_exception(error);
}

void GradWorkPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    BlockFn invoke = nullptr;
    void* ctx = nullptr;
    std::size_t blocks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      invoke = job_invoke_;
      ctx = job_ctx_;
      blocks = job_blocks_;
    }
    try {
      while (true) {
        const std::size_t b = next_block_.fetch_add(1);
        if (b >= blocks) break;
        invoke(ctx, b, worker);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      errors_[worker] = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --helpers_running_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace vnfm::nn
