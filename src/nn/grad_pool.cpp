#include "nn/grad_pool.hpp"

#include <algorithm>

namespace vnfm::nn {

std::vector<ElemBlock> make_elem_blocks(std::span<const std::size_t> sizes) {
  std::vector<ElemBlock> blocks;
  for (std::size_t param = 0; param < sizes.size(); ++param) {
    for (std::size_t offset = 0; offset < sizes[param]; offset += kOptBlockElems) {
      blocks.push_back({param, offset, std::min(kOptBlockElems, sizes[param] - offset)});
    }
  }
  return blocks;
}

GradWorkPool::GradWorkPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  errors_.resize(workers_);
  helpers_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w)
    helpers_.emplace_back([this, w] { worker_loop(w); });
}

GradWorkPool::~GradWorkPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& helper : helpers_) helper.join();
}

void GradWorkPool::ensure_phase_capacity(std::size_t phases) {
  if (phases <= phase_capacity_) return;
  // Only grows between jobs (no helper is running), so plain swap is safe.
  phase_next_ = std::make_unique<std::atomic<std::size_t>[]>(phases);
  phase_done_ = std::make_unique<std::atomic<std::size_t>[]>(phases);
  phase_capacity_ = phases;
}

void GradWorkPool::record_error(std::size_t worker) noexcept {
  abort_.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!errors_[worker]) errors_[worker] = std::current_exception();
}

void GradWorkPool::run_blocks(std::size_t phase, std::size_t worker) {
  const Phase& ph = job_phases_[phase];
  while (true) {
    const std::size_t b = phase_next_[phase].fetch_add(1, std::memory_order_relaxed);
    if (b >= ph.blocks) break;
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        ph.invoke(ph.ctx, b, worker);
      } catch (...) {
        record_error(worker);
      }
    }
    // After an error, claimed blocks still count as done so every waiter
    // drains — the job must end cleanly before the exception is rethrown.
    if (phase_done_[phase].fetch_add(1, std::memory_order_release) + 1 == ph.blocks) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
      }
      done_cv_.notify_all();
    }
  }
}

void GradWorkPool::run_phases(std::span<const Phase> phases) {
  if (phases.empty()) return;
  std::size_t max_blocks = 0;
  for (const Phase& phase : phases) max_blocks = std::max(max_blocks, phase.blocks);

  if (workers_ == 1 || max_blocks < workers_) {
    // Inline path: with fewer blocks than workers in every phase, helper
    // threads cannot shorten the critical path — the wake/park handshake
    // only adds latency (measured as the 0.92x "speedup" on small batches
    // before this fallback existed). Same block decomposition and per-block
    // work as the pooled path, so results are bit-identical.
    for (const Phase& phase : phases) {
      if (phase.prepare) phase.prepare(phase.prepare_ctx);
      for (std::size_t b = 0; b < phase.blocks; ++b) phase.invoke(phase.ctx, b, 0);
    }
    return;
  }

  ensure_phase_capacity(phases.size());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_phases_ = phases.data();
    job_phase_count_ = phases.size();
    phases_open_ = 0;
    for (std::size_t p = 0; p < phases.size(); ++p) {
      phase_next_[p].store(0, std::memory_order_relaxed);
      phase_done_[p].store(0, std::memory_order_relaxed);
    }
    abort_.store(false, std::memory_order_relaxed);
    helpers_running_ = helpers_.size();
    ++generation_;
    for (auto& error : errors_) error = nullptr;
  }
  start_cv_.notify_all();  // one wake for the whole multi-phase job

  for (std::size_t p = 0; p < phases.size(); ++p) {
    const Phase& phase = phases[p];
    if (phase.prepare != nullptr && !abort_.load(std::memory_order_relaxed)) {
      try {
        phase.prepare(phase.prepare_ctx);
      } catch (...) {
        record_error(0);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      phases_open_ = p + 1;
    }
    start_cv_.notify_all();
    run_blocks(p, 0);
    // Barrier: all blocks of this phase must have FINISHED (not merely been
    // claimed) before the next prepare hook may reduce their outputs. The
    // release fetch_add chain on phase_done_ makes the workers' writes
    // visible to this acquire load.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return phase_done_[p].load(std::memory_order_acquire) >= phase.blocks;
    });
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return helpers_running_ == 0; });
  job_phases_ = nullptr;
  job_phase_count_ = 0;
  for (const auto& error : errors_)
    if (error) std::rethrow_exception(error);
}

void GradWorkPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::size_t phase_count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      phase_count = job_phase_count_;
    }
    for (std::size_t p = 0; p < phase_count; ++p) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return phases_open_ > p; });
      }
      run_blocks(p, worker);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --helpers_running_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace vnfm::nn
