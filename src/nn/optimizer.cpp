#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace vnfm::nn {

Sgd::Sgd(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->size(), 0.0F);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto values = params_[i]->value.flat();
    const auto grads = params_[i]->grad.flat();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < values.size(); ++j) {
      float g = grads[j] + options_.weight_decay * values[j];
      if (options_.momentum != 0.0F) {
        vel[j] = options_.momentum * vel[j] + g;
        g = vel[j];
      }
      values[j] -= options_.learning_rate * g;
    }
  }
}

void Adam::save(Serializer& out) const {
  out.begin_chunk("adam");
  out.write_u64(step_count_);
  out.write_u64(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out.write_f32_vec(m_[i]);
    out.write_f32_vec(v_[i]);
  }
  out.end_chunk();
}

void Adam::load(Deserializer& in) {
  in.enter_chunk("adam");
  step_count_ = in.read_u64();
  if (in.read_u64() != params_.size())
    throw SerializeError("Adam parameter-count mismatch in checkpoint");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto m = in.read_f32_vec();
    auto v = in.read_f32_vec();
    if (m.size() != m_[i].size() || v.size() != v_[i].size())
      throw SerializeError("Adam moment shape mismatch in checkpoint");
    m_[i] = std::move(m);
    v_[i] = std::move(v);
  }
  in.leave_chunk();
}

Adam::Adam(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->size(), 0.0F);
    v_.emplace_back(p->size(), 0.0F);
  }
}

void Adam::step() {
  ++step_count_;
  const auto t = static_cast<float>(step_count_);
  const float bias1 = 1.0F - std::pow(options_.beta1, t);
  const float bias2 = 1.0F - std::pow(options_.beta2, t);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto values = params_[i]->value.flat();
    const auto grads = params_[i]->grad.flat();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < values.size(); ++j) {
      const float g = grads[j] + options_.weight_decay * values[j];
      m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      values[j] -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace vnfm::nn
