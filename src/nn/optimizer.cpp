#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace vnfm::nn {

Sgd::Sgd(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->size(), 0.0F);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto values = params_[i]->value.flat();
    const auto grads = params_[i]->grad.flat();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < values.size(); ++j) {
      float g = grads[j] + options_.weight_decay * values[j];
      if (options_.momentum != 0.0F) {
        vel[j] = options_.momentum * vel[j] + g;
        g = vel[j];
      }
      values[j] -= options_.learning_rate * g;
    }
  }
}

Adam::Adam(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->size(), 0.0F);
    v_.emplace_back(p->size(), 0.0F);
  }
}

void Adam::step() {
  ++step_count_;
  const auto t = static_cast<float>(step_count_);
  const float bias1 = 1.0F - std::pow(options_.beta1, t);
  const float bias2 = 1.0F - std::pow(options_.beta2, t);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto values = params_[i]->value.flat();
    const auto grads = params_[i]->grad.flat();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < values.size(); ++j) {
      const float g = grads[j] + options_.weight_decay * values[j];
      m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      values[j] -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace vnfm::nn
