#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace vnfm::nn {

namespace {

std::vector<ElemBlock> blocks_for(const std::vector<Param*>& params) {
  std::vector<std::size_t> sizes;
  sizes.reserve(params.size());
  for (const Param* p : params) sizes.push_back(p->size());
  return make_elem_blocks(sizes);
}

}  // namespace

Sgd::Sgd(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->size(), 0.0F);
  blocks_ = blocks_for(params_);
}

void Sgd::step() {
  begin_step();
  for (std::size_t b = 0; b < blocks_.size(); ++b) step_block(b);
}

void Sgd::step_block(std::size_t block) noexcept {
  const ElemBlock& eb = blocks_[block];
  const auto values = params_[eb.param]->value.flat().subspan(eb.offset, eb.count);
  const auto grads = params_[eb.param]->grad.flat().subspan(eb.offset, eb.count);
  float* vel = velocity_[eb.param].data() + eb.offset;
  for (std::size_t j = 0; j < eb.count; ++j) {
    float g = grads[j] + options_.weight_decay * values[j];
    if (options_.momentum != 0.0F) {
      vel[j] = options_.momentum * vel[j] + g;
      g = vel[j];
    }
    values[j] -= options_.learning_rate * g;
  }
}

void Adam::save(Serializer& out) const {
  out.begin_chunk("adam");
  out.write_u64(step_count_);
  out.write_u64(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out.write_f32_vec(m_[i]);
    out.write_f32_vec(v_[i]);
  }
  out.end_chunk();
}

void Adam::load(Deserializer& in) {
  in.enter_chunk("adam");
  step_count_ = in.read_u64();
  if (in.read_u64() != params_.size())
    throw SerializeError("Adam parameter-count mismatch in checkpoint");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto m = in.read_f32_vec();
    auto v = in.read_f32_vec();
    if (m.size() != m_[i].size() || v.size() != v_[i].size())
      throw SerializeError("Adam moment shape mismatch in checkpoint");
    m_[i] = std::move(m);
    v_[i] = std::move(v);
  }
  in.leave_chunk();
}

Adam::Adam(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  if (params_.empty()) throw std::invalid_argument("optimizer with no parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->size(), 0.0F);
    v_.emplace_back(p->size(), 0.0F);
  }
  blocks_ = blocks_for(params_);
}

void Adam::begin_step() noexcept {
  ++step_count_;
  const auto t = static_cast<float>(step_count_);
  bias1_ = 1.0F - std::pow(options_.beta1, t);
  bias2_ = 1.0F - std::pow(options_.beta2, t);
}

void Adam::step() {
  begin_step();
  for (std::size_t b = 0; b < blocks_.size(); ++b) step_block(b);
}

void Adam::step_block(std::size_t block) noexcept {
  const ElemBlock& eb = blocks_[block];
  const auto values = params_[eb.param]->value.flat().subspan(eb.offset, eb.count);
  const auto grads = params_[eb.param]->grad.flat().subspan(eb.offset, eb.count);
  float* m = m_[eb.param].data() + eb.offset;
  float* v = v_[eb.param].data() + eb.offset;
  for (std::size_t j = 0; j < eb.count; ++j) {
    const float g = grads[j] + options_.weight_decay * values[j];
    m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * g;
    v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * g * g;
    const float m_hat = m[j] / bias1_;
    const float v_hat = v[j] / bias2_;
    values[j] -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
  }
}

}  // namespace vnfm::nn
