#include "nn/matrix.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "nn/matmul_simd.hpp"

namespace vnfm::nn {

namespace {

SimdPath detect_simd_path() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::avx2_compiled() && __builtin_cpu_supports("avx2")) return SimdPath::kAvx2;
#endif
  if (detail::neon_compiled()) return SimdPath::kNeon;
  return SimdPath::kScalar;
}

}  // namespace

const char* to_string(SimdPath path) noexcept {
  switch (path) {
    case SimdPath::kAvx2:
      return "avx2";
    case SimdPath::kNeon:
      return "neon";
    case SimdPath::kScalar:
      return "scalar";
  }
  return "scalar";
}

SimdPath matmul_simd_path() noexcept {
  static const SimdPath path = detect_simd_path();
  return path;
}

Matrix Matrix::from_row(std::span<const float> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.flat().begin());
  return m;
}

namespace {

// Compute-only scalar kernel bodies, shared by the public wrappers and the
// `_scalar` reference entry points. Shapes are validated and `out` is sized
// (and zeroed, for the accumulate kernels) by the caller.
//
// The accumulate kernels deliberately have NO `a_ip == 0` skip branch: the
// old skip silently dropped `0 * Inf = NaN`, masking exploding-gradient
// bugs instead of surfacing them, and put a data-dependent branch in the
// inner loop. For finite inputs adding the `0 * b` terms is bit-neutral
// (the accumulator starts at +0.0 and `x + 0.0*b` cannot change x's bits
// for finite b: the product is ±0.0 and +0.0 + -0.0 == +0.0), so removing
// the branch changed no finite result.

void matmul_kernel_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out.row(i).data();
    const float* a_row = a.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

void matmul_at_b_kernel_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p).data();
    const float* b_row = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      float* out_row = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += a_pi * b_row[j];
    }
  }
}

void matmul_a_bt_kernel_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  // The dot-product reduction runs in 8 independent lanes combined in a
  // fixed tree: strict left-to-right float summation cannot be vectorised
  // (FP addition is not associative, so the compiler must not reorder it),
  // and this kernel is the training hot path — every forward pass of every
  // Linear layer lands here. The lane split is part of the numeric
  // definition: results are deterministic and identical on every run,
  // thread count, and SIMD path (the AVX2/NEON kernels implement exactly
  // these lanes and this combine tree), just not bit-equal to a serial
  // summation.
  const std::size_t k8 = k - (k % 8);
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i).data();
    float* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j).data();
      float l0 = 0.0F, l1 = 0.0F, l2 = 0.0F, l3 = 0.0F;
      float l4 = 0.0F, l5 = 0.0F, l6 = 0.0F, l7 = 0.0F;
      for (std::size_t p = 0; p < k8; p += 8) {
        l0 += a_row[p] * b_row[p];
        l1 += a_row[p + 1] * b_row[p + 1];
        l2 += a_row[p + 2] * b_row[p + 2];
        l3 += a_row[p + 3] * b_row[p + 3];
        l4 += a_row[p + 4] * b_row[p + 4];
        l5 += a_row[p + 5] * b_row[p + 5];
        l6 += a_row[p + 6] * b_row[p + 6];
        l7 += a_row[p + 7] * b_row[p + 7];
      }
      float acc = ((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7));
      for (std::size_t p = k8; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
}

void check_matmul_shapes(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul shape mismatch");
}
void check_matmul_at_b_shapes(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at_b shape mismatch");
}
void check_matmul_a_bt_shapes(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_a_bt shape mismatch");
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_shapes(a, b);
  out.resize(a.rows(), b.cols());  // accumulate kernel: explicit zero-fill
  switch (matmul_simd_path()) {
    case SimdPath::kAvx2:
      detail::matmul_avx2(a, b, out);
      return;
    case SimdPath::kNeon:
      detail::matmul_neon(a, b, out);
      return;
    case SimdPath::kScalar:
      break;
  }
  matmul_kernel_scalar(a, b, out);
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_at_b_shapes(a, b);
  out.resize(a.cols(), b.cols());  // accumulate kernel: explicit zero-fill
  switch (matmul_simd_path()) {
    case SimdPath::kAvx2:
      detail::matmul_at_b_avx2(a, b, out);
      return;
    case SimdPath::kNeon:
      detail::matmul_at_b_neon(a, b, out);
      return;
    case SimdPath::kScalar:
      break;
  }
  matmul_at_b_kernel_scalar(a, b, out);
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_a_bt_shapes(a, b);
  // WRITE kernel: every element is assigned, so skip the zero-fill — this
  // is every Linear forward on the act/serve hot path.
  out.resize_for_overwrite(a.rows(), b.rows());
  switch (matmul_simd_path()) {
    case SimdPath::kAvx2:
      detail::matmul_a_bt_avx2(a, b, out);
      return;
    case SimdPath::kNeon:
      detail::matmul_a_bt_neon(a, b, out);
      return;
    case SimdPath::kScalar:
      break;
  }
  matmul_a_bt_kernel_scalar(a, b, out);
}

void matmul_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_shapes(a, b);
  out.resize(a.rows(), b.cols());
  matmul_kernel_scalar(a, b, out);
}

void matmul_at_b_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_at_b_shapes(a, b);
  out.resize(a.cols(), b.cols());
  matmul_at_b_kernel_scalar(a, b, out);
}

void matmul_a_bt_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
  check_matmul_a_bt_shapes(a, b);
  out.resize_for_overwrite(a.rows(), b.rows());
  matmul_a_bt_kernel_scalar(a, b, out);
}

void add_row_vector(Matrix& m, std::span<const float> bias) {
  if (m.cols() != bias.size()) throw std::invalid_argument("bias length mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.row(i).data();
    for (std::size_t j = 0; j < bias.size(); ++j) row[j] += bias[j];
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  if (m.cols() != out.size()) throw std::invalid_argument("column_sums length mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i).data();
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += row[j];
  }
}

void axpy(float scale, const Matrix& m, Matrix& out) {
  if (m.rows() != out.rows() || m.cols() != out.cols())
    throw std::invalid_argument("axpy shape mismatch");
  const auto src = m.flat();
  const auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += scale * src[i];
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")";
  return os;
}

}  // namespace vnfm::nn
