// ManagerRegistry: string-keyed, self-registering factories for every VNF
// manager policy (learning and heuristic). Drivers select policies by name
// and tune them through Config key=value parameters, so new agents plug into
// every bench/example without touching driver code.
//
//   auto manager = exp::ManagerRegistry::instance().create(
//       "dqn", env, Config{{"dueling", "1"}, {"seed", "9"}});
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/manager.hpp"

namespace vnfm::exp {

/// Builds a manager for `env`, tuned by string key=value `params`.
/// Unknown param keys are ignored; malformed values throw.
using ManagerFactory = std::function<std::unique_ptr<core::Manager>(
    const core::VnfEnv& env, const Config& params)>;

/// Process-wide name -> factory map. All built-in policies register on first
/// access; extensions register through add() (typically via ManagerRegistrar
/// at static-initialisation time).
class ManagerRegistry {
 public:
  /// The process-wide registry (built-ins registered on first access).
  static ManagerRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on a duplicate name.
  void add(const std::string& name, ManagerFactory factory);

  /// True when a factory of this name is registered.
  [[nodiscard]] bool contains(const std::string& name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds the named manager; throws std::invalid_argument (listing the
  /// registered names) when `name` is unknown.
  [[nodiscard]] std::unique_ptr<core::Manager> create(const std::string& name,
                                                      const core::VnfEnv& env,
                                                      const Config& params = {}) const;

 private:
  ManagerRegistry();  // registers the built-in policies

  std::map<std::string, ManagerFactory> factories_;
};

/// Registers a factory from a static initialiser:
///   static exp::ManagerRegistrar reg("my_policy", [](const auto& env,
///                                                    const Config& params) {...});
struct ManagerRegistrar {
  /// Adds `factory` under `name` to the process-wide registry.
  ManagerRegistrar(const std::string& name, ManagerFactory factory) {
    ManagerRegistry::instance().add(name, std::move(factory));
  }
};

}  // namespace vnfm::exp
