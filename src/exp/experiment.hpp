// Experiment: the single public entry point for running anything — a fluent
// façade over ScenarioCatalog (what world), ManagerRegistry (which policy),
// the episode runner (training) and a deterministic multi-threaded evaluator.
//
//   auto report = exp::Experiment::scenario("diurnal")
//                     .manager("dqn")
//                     .train(30)
//                     .evaluate(8);
//
// Evaluation fans out across a std::thread pool: every repeat runs in its own
// freshly constructed environment with its own eval-clone of the manager
// (Manager::clone_for_eval), seeded from the held-out evaluation seed space
// (core::eval_seed). Results are bit-identical for any thread count,
// including the sequential threads(1) path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/environment.hpp"
#include "core/manager.hpp"
#include "core/runner.hpp"
#include "core/serve_driver.hpp"
#include "core/train_driver.hpp"

namespace vnfm::exp {

/// Outcome of one multi-repeat evaluation.
struct EvalReport {
  core::EpisodeResult mean;                   ///< field-wise mean over repeats
  std::vector<core::EpisodeResult> per_seed;  ///< one entry per repeat, seed order
  std::vector<std::uint64_t> seeds;           ///< the held-out episode seeds used

  /// Persists the report as CSV: one row per held-out seed plus a final
  /// mean row (see exp/report_io.hpp).
  void write_csv(const std::string& path) const;
  /// Persists the report as a structured JSON document (exp/report_io.hpp).
  void write_json(const std::string& path) const;
};

/// Evaluates `prototype` over `repeats` held-out seeds (core::eval_seed of
/// options.seed), each repeat in a fresh environment built from
/// `env_options`, fanned out over up to `threads` workers (0 = hardware
/// concurrency). Each repeat runs on its own Manager::clone_for_eval taken
/// from the prototype's current state, which makes the result independent of
/// scheduling: any thread count — including 1 — produces bit-identical
/// EpisodeResults. Managers that cannot clone are evaluated sequentially
/// through `prototype` itself.
[[nodiscard]] EvalReport evaluate_parallel(const core::EnvOptions& env_options,
                                           core::Manager& prototype,
                                           core::EpisodeOptions options,
                                           std::size_t repeats, std::size_t threads = 0);

/// Fluent experiment builder; see file header for the canonical chain.
class Experiment {
 public:
  /// Starts from a named scenario of the ScenarioCatalog.
  static Experiment scenario(const std::string& name, const Config& overrides = {});
  /// Escape hatch for pre-built options (tests, custom sweeps).
  static Experiment from_options(core::EnvOptions options);

  /// Selects the policy by ManagerRegistry name (lazily constructed).
  Experiment& manager(const std::string& name, const Config& params = {});
  /// Adopts an externally built manager instead of a registry name.
  Experiment& use_manager(std::unique_ptr<core::Manager> manager);

  /// Base seed of the episode seed space (training episode i uses
  /// core::train_seed(seed, i), evaluation repeat j core::eval_seed(seed, j)).
  Experiment& seed(std::uint64_t seed);
  /// Worker threads for evaluate(); 0 = hardware concurrency.
  Experiment& threads(std::size_t threads);
  /// Opts train() into the actor-learner pipeline (core::TrainDriver) with
  /// `threads` actor workers (0 = hardware concurrency). The pipeline's
  /// results are bit-identical for every thread count — train_threads(1) and
  /// train_threads(K) produce the same learning curve and final policy; only
  /// wall-clock changes. Without this call train() keeps the classic inline
  /// loop (the manager learns online within each episode), which is a
  /// different — equally deterministic — algorithm. Managers without
  /// parallel-training support fall back to the sequential path either way.
  /// See README "Training architecture".
  Experiment& train_threads(std::size_t threads);
  /// Episodes per weight republication round of the pipeline (default 4).
  /// Part of the algorithm definition: changing it changes results.
  Experiment& train_sync_period(std::size_t episodes);
  /// Learner-side workers for the data-parallel minibatch gradient engine
  /// (0 = hardware concurrency, default 1). Orthogonal to train_threads():
  /// actor threads parallelise episode rollouts, learner threads the
  /// batched gradient step itself. Any value produces bit-identical curves,
  /// weights, and checkpoint archives (modulo archived wall-clock stats) —
  /// only grad-step wall-clock changes (train_stats().grad_step_micros()).
  Experiment& learner_threads(std::size_t threads);
  /// Simulated seconds per training episode (0 = EpisodeOptions default).
  Experiment& train_duration(double seconds);
  /// Simulated seconds per evaluation episode (0 = EpisodeOptions default).
  Experiment& eval_duration(double seconds);
  /// Optional cap on decided requests per episode.
  Experiment& max_requests(std::size_t max_requests);

  /// Trains the selected manager now for `episodes` episodes; the learning
  /// curve accumulates across calls.
  Experiment& train(std::size_t episodes);

  // ---- Checkpoint / resume (core/checkpoint.hpp) ---------------------------
  /// Writes a resumable checkpoint roughly every `episodes` completed
  /// training episodes (0 = off) into checkpoint_dir(). On the pipeline path
  /// checkpoints align to train_sync_period() round boundaries, the only
  /// resume-exact cut points.
  Experiment& checkpoint_every(std::size_t episodes);
  /// Directory train() writes checkpoint files into (created on demand).
  Experiment& checkpoint_dir(const std::string& path);
  /// Keeps only the newest `n` archives in checkpoint_dir(), pruning older
  /// ones after each periodic write (0 = unlimited, the default), so
  /// multi-day runs do not accumulate checkpoints without bound.
  Experiment& checkpoint_keep_last(std::size_t n);
  /// Restores a checkpoint written by a previous run: the manager's full
  /// learning state, the episode index (subsequent train() calls continue
  /// the training seed sequence where the archive stopped), the learning
  /// curve, and train_stats(). Call after selecting the manager with the
  /// same configuration that wrote the archive; the resumed run's curve and
  /// final weights are bit-identical to never having been interrupted.
  Experiment& resume(const std::string& path);
  /// Writes the current manager state + accumulated training history to
  /// `path` right now (explicit snapshot, independent of checkpoint_every).
  void save_checkpoint(const std::string& path);

  /// Runs the multi-repeat held-out evaluation (training/exploration off).
  [[nodiscard]] EvalReport evaluate(std::size_t repeats);

  /// Runs the production serving engine (core::ServeDriver) against the
  /// selected manager's current policy: sharded workers micro-batch
  /// placement decisions under an open-loop load generator and report
  /// throughput/latency plus the bit-reproducible per-partition outcomes.
  /// A zero `options.seed` inherits the experiment's seed(); everything
  /// else passes through unchanged (see core/serve_driver.hpp).
  [[nodiscard]] core::ServeStats serve(core::ServeOptions options);

  // ---- Introspection -------------------------------------------------------
  [[nodiscard]] const core::EnvOptions& env_options() const noexcept {
    return options_;
  }
  /// The experiment's training environment (lazily constructed).
  [[nodiscard]] core::VnfEnv& env();
  /// The selected manager (lazily constructed).
  [[nodiscard]] core::Manager& manager_ref();
  /// Per-episode results accumulated over every train() call (and resume()).
  [[nodiscard]] const std::vector<core::EpisodeResult>& learning_curve() const noexcept {
    return curve_;
  }
  /// Episode seed of every learning-curve entry (aligned with learning_curve()).
  [[nodiscard]] const std::vector<std::uint64_t>& learning_curve_seeds() const noexcept {
    return curve_seeds_;
  }
  /// Wall-clock / throughput summary accumulated over every train() call.
  [[nodiscard]] const core::TrainStats& train_stats() const noexcept {
    return train_stats_;
  }

  // ---- Persistence (exp/report_io) ----------------------------------------
  /// Writes the accumulated learning curve as CSV, one row per episode.
  void write_curve_csv(const std::string& path) const;
  /// Writes the learning curve as JSON with the train_stats() block attached.
  void write_curve_json(const std::string& path) const;

 private:
  Experiment() = default;

  core::EnvOptions options_;
  std::unique_ptr<core::VnfEnv> env_;
  std::string manager_name_;
  Config manager_params_;
  std::unique_ptr<core::Manager> manager_;
  std::uint64_t seed_ = 0;
  std::size_t threads_ = 0;
  /// Unset = classic inline loop; set = pipeline (0 = hardware concurrency).
  std::optional<std::size_t> train_threads_;
  std::size_t train_sync_period_ = 4;
  std::size_t learner_threads_ = 1;  ///< gradient-engine workers (0 = hardware)
  std::size_t max_requests_ = 0;  ///< 0 = unlimited
  double train_duration_s_ = 0.0;  ///< 0 = EpisodeOptions default
  double eval_duration_s_ = 0.0;   ///< 0 = EpisodeOptions default
  std::size_t checkpoint_every_ = 0;  ///< 0 = no periodic checkpoints
  std::string checkpoint_dir_;
  std::size_t checkpoint_keep_last_ = 0;  ///< 0 = keep every archive
  /// Training episodes completed (next train() continues the seed sequence
  /// here); kept separate from curve_.size() so resume stays authoritative.
  std::size_t episodes_done_ = 0;
  std::vector<core::EpisodeResult> curve_;
  std::vector<std::uint64_t> curve_seeds_;
  core::TrainStats train_stats_;
};

}  // namespace vnfm::exp
