// Persistence for experiment outputs: EvalReports and learning curves to
// CSV (one row per seed/episode) and JSON (structured, self-describing).
// Bench binaries use these instead of hand-rolling per-figure writers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/serve_driver.hpp"
#include "core/train_driver.hpp"

namespace vnfm::exp {

struct EvalReport;  ///< defined in exp/experiment.hpp

/// Column names of the EpisodeResult metric block, in the order
/// episode_result_row emits them.
const std::vector<std::string>& episode_result_columns();

/// The metric values of one EpisodeResult, aligned with
/// episode_result_columns().
std::vector<double> episode_result_row(const core::EpisodeResult& result);

/// CSV: header `seed,<metrics...>`, one row per held-out seed, then a final
/// `mean` row.
void write_eval_csv(const EvalReport& report, const std::string& path);

/// JSON: {"seeds": [...], "mean": {...}, "per_seed": [{"seed":..., ...}]}.
void write_eval_json(const EvalReport& report, const std::string& path);

/// CSV: header `episode,seed,<metrics...>`, one row per training episode.
/// `seeds` may be empty (the column is then omitted).
void write_curve_csv(const std::vector<core::EpisodeResult>& curve,
                     const std::vector<std::uint64_t>& seeds,
                     const std::string& path);

/// JSON: {"stats": {...}, "episodes": [{"episode":..., "seed":..., ...}]}.
/// `stats` may be null; `seeds` may be empty.
void write_curve_json(const std::vector<core::EpisodeResult>& curve,
                      const std::vector<std::uint64_t>& seeds,
                      const core::TrainStats* stats, const std::string& path);

/// JSON report of one serving run (core::ServeDriver): the deterministic
/// block (requests/decisions/accept counts, cost, decision digest, one
/// object per partition), the wall-clock block (throughput, p50/p95/p99/max
/// decision latency in µs, batch occupancy, backpressure, one object per
/// shard), and the ServeOptions that produced it.
void write_serve_json(const core::ServeStats& stats, const core::ServeOptions& options,
                      const std::string& path);

/// Multi-series reward-curve CSV (bench figure 3 shape): header
/// `episode,<labels...>`, one row per episode index. All curves must have
/// equal length.
void write_reward_curves_csv(const std::vector<std::string>& labels,
                             const std::vector<std::vector<double>>& curves,
                             const std::string& path);

}  // namespace vnfm::exp
