#include "exp/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "exp/registry.hpp"
#include "exp/report_io.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

/// Runs one evaluation repeat in a private environment.
core::EpisodeResult run_repeat(const core::EnvOptions& env_options,
                               core::Manager& manager, core::EpisodeOptions options,
                               std::uint64_t episode_seed) {
  core::VnfEnv env(env_options);
  options.seed = episode_seed;
  return core::run_episode(env, manager, options);
}

}  // namespace

EvalReport evaluate_parallel(const core::EnvOptions& env_options,
                             core::Manager& prototype, core::EpisodeOptions options,
                             std::size_t repeats, std::size_t threads) {
  if (repeats == 0) throw std::invalid_argument("evaluation needs at least one repeat");
  options.training = false;

  EvalReport report;
  report.seeds.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i)
    report.seeds.push_back(core::eval_seed(options.seed, i));
  report.per_seed.resize(repeats);

  // Every repeat starts from an identical snapshot of the prototype, so the
  // work distribution cannot influence any per-seed result. The probe clone
  // is recycled for the first repeat that needs one.
  std::unique_ptr<core::Manager> probe = prototype.clone_for_eval();
  const bool cloneable = probe != nullptr;
  std::atomic<bool> probe_taken{false};
  auto take_clone = [&]() -> std::unique_ptr<core::Manager> {
    if (!probe_taken.exchange(true)) return std::move(probe);
    return prototype.clone_for_eval();
  };
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  const std::size_t workers = cloneable ? std::min(threads, repeats) : 1;

  if (workers <= 1) {
    for (std::size_t i = 0; i < repeats; ++i) {
      if (cloneable) {
        const auto clone = take_clone();
        report.per_seed[i] = run_repeat(env_options, *clone, options, report.seeds[i]);
      } else {
        report.per_seed[i] = run_repeat(env_options, prototype, options, report.seeds[i]);
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= repeats) break;
            const auto clone = take_clone();
            report.per_seed[i] =
                run_repeat(env_options, *clone, options, report.seeds[i]);
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& worker : pool) worker.join();
    for (const auto& error : errors)
      if (error) std::rethrow_exception(error);
  }

  report.mean = core::mean_result(report.per_seed);
  return report;
}

Experiment Experiment::scenario(const std::string& name, const Config& overrides) {
  Experiment experiment;
  experiment.options_ = ScenarioCatalog::instance().build(name, overrides);
  return experiment;
}

Experiment Experiment::from_options(core::EnvOptions options) {
  Experiment experiment;
  experiment.options_ = std::move(options);
  return experiment;
}

Experiment& Experiment::manager(const std::string& name, const Config& params) {
  manager_name_ = name;
  manager_params_ = params;
  manager_.reset();  // rebuilt lazily with the new selection
  curve_.clear();
  curve_seeds_.clear();
  train_stats_ = {};
  episodes_done_ = 0;
  return *this;
}

Experiment& Experiment::use_manager(std::unique_ptr<core::Manager> manager) {
  if (!manager) throw std::invalid_argument("use_manager needs a manager");
  manager_ = std::move(manager);
  manager_name_.clear();
  curve_.clear();
  curve_seeds_.clear();
  train_stats_ = {};
  episodes_done_ = 0;
  return *this;
}

Experiment& Experiment::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

Experiment& Experiment::threads(std::size_t threads) {
  threads_ = threads;
  return *this;
}

Experiment& Experiment::train_threads(std::size_t threads) {
  train_threads_ = threads;
  return *this;
}

Experiment& Experiment::train_sync_period(std::size_t episodes) {
  if (episodes == 0) throw std::invalid_argument("sync period needs at least 1 episode");
  train_sync_period_ = episodes;
  return *this;
}

Experiment& Experiment::learner_threads(std::size_t threads) {
  learner_threads_ = threads;
  return *this;
}

Experiment& Experiment::train_duration(double seconds) {
  train_duration_s_ = seconds;
  return *this;
}

Experiment& Experiment::eval_duration(double seconds) {
  eval_duration_s_ = seconds;
  return *this;
}

Experiment& Experiment::max_requests(std::size_t max_requests) {
  max_requests_ = max_requests;
  return *this;
}

core::VnfEnv& Experiment::env() {
  if (!env_) env_ = std::make_unique<core::VnfEnv>(options_);
  return *env_;
}

core::Manager& Experiment::manager_ref() {
  if (!manager_) {
    if (manager_name_.empty())
      throw std::logic_error("select a manager() before running the experiment");
    manager_ = ManagerRegistry::instance().create(manager_name_, env(), manager_params_);
  }
  return *manager_;
}

Experiment& Experiment::train(std::size_t episodes) {
  core::TrainOptions train;
  train.episodes = episodes;
  if (train_duration_s_ > 0.0) train.episode.duration_s = train_duration_s_;
  if (max_requests_ > 0) train.episode.max_requests = max_requests_;
  train.episode.seed = seed_;
  // Successive train() calls continue the training seed sequence instead of
  // replaying episode seeds already consumed (resume() restores the offset).
  train.first_episode = episodes_done_;
  train.sync_period = train_sync_period_;
  train.threads = train_threads_.value_or(1);
  train.learner_threads = learner_threads_;
  train.checkpoint_every = checkpoint_every_;
  train.checkpoint_dir = checkpoint_dir_;
  train.keep_last_n = checkpoint_keep_last_;
  if (checkpoint_every_ > 0 && !checkpoint_dir_.empty()) {
    // Archives describe the full history from episode 0, not just this call.
    train.prior_curve = curve_;
    train.prior_seeds = curve_seeds_;
    train.prior_stats = train_stats_;
  }

  const core::TrainDriver driver(options_, train);
  // Default: the classic inline loop in the experiment's own environment.
  // train_threads(n) opts into the thread-count-invariant pipeline.
  const core::TrainResult result = train_threads_.has_value()
                                       ? driver.run(manager_ref())
                                       : driver.run_sequential(manager_ref(), &env());
  episodes_done_ += result.curve.size();
  curve_.insert(curve_.end(), result.curve.begin(), result.curve.end());
  curve_seeds_.insert(curve_seeds_.end(), result.seeds.begin(), result.seeds.end());
  train_stats_.accumulate(result.stats);
  return *this;
}

Experiment& Experiment::checkpoint_every(std::size_t episodes) {
  checkpoint_every_ = episodes;
  return *this;
}

Experiment& Experiment::checkpoint_dir(const std::string& path) {
  checkpoint_dir_ = path;
  return *this;
}

Experiment& Experiment::checkpoint_keep_last(std::size_t n) {
  checkpoint_keep_last_ = n;
  return *this;
}

Experiment& Experiment::resume(const std::string& path) {
  const core::TrainCheckpoint data = core::read_checkpoint(path, manager_ref());
  seed_ = data.base_seed;
  episodes_done_ = data.episodes_done;
  curve_ = data.curve;
  curve_seeds_ = data.seeds;
  train_stats_ = data.stats;
  return *this;
}

void Experiment::save_checkpoint(const std::string& path) {
  core::TrainCheckpoint data;
  data.episodes_done = episodes_done_;
  data.base_seed = seed_;
  data.curve = curve_;
  data.seeds = curve_seeds_;
  data.stats = train_stats_;
  core::write_checkpoint(path, manager_ref(), data);
}

void Experiment::write_curve_csv(const std::string& path) const {
  exp::write_curve_csv(curve_, curve_seeds_, path);
}

void Experiment::write_curve_json(const std::string& path) const {
  exp::write_curve_json(curve_, curve_seeds_, &train_stats_, path);
}

void EvalReport::write_csv(const std::string& path) const {
  write_eval_csv(*this, path);
}

void EvalReport::write_json(const std::string& path) const {
  write_eval_json(*this, path);
}

EvalReport Experiment::evaluate(std::size_t repeats) {
  core::EpisodeOptions options;
  if (eval_duration_s_ > 0.0) options.duration_s = eval_duration_s_;
  if (max_requests_ > 0) options.max_requests = max_requests_;
  options.seed = seed_;
  options.training = false;
  return evaluate_parallel(options_, manager_ref(), options, repeats, threads_);
}

core::ServeStats Experiment::serve(core::ServeOptions options) {
  if (options.seed == 0) options.seed = seed_;
  const core::ServeDriver driver(options_, options);
  return driver.run(manager_ref());
}

}  // namespace vnfm::exp
