#include "exp/registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/migration.hpp"

namespace vnfm::exp {
namespace {

/// Applies the shared DQN parameter keys on top of `config`. Every field the
/// ablation studies sweep is addressable, so config variants replace
/// hand-built rl::DqnConfig structs in drivers.
rl::DqnConfig dqn_config_from(const core::VnfEnv& env, const Config& params) {
  rl::DqnConfig config = core::default_dqn_config(env, params.get_uint64("seed", 7));
  config.learning_rate = static_cast<float>(
      params.get_double("learning_rate", config.learning_rate));
  config.gamma = static_cast<float>(params.get_double("gamma", config.gamma));
  config.batch_size = params.get_size("batch_size", config.batch_size);
  config.replay_capacity = params.get_size("replay_capacity", config.replay_capacity);
  config.min_replay_before_training =
      params.get_size("min_replay_before_training", config.min_replay_before_training);
  config.train_period = params.get_size("train_period", config.train_period);
  config.target_update_period =
      params.get_size("target_update_period", config.target_update_period);
  config.grad_clip_norm = params.get_double("grad_clip_norm", config.grad_clip_norm);
  config.double_dqn = params.get_bool("double_dqn", config.double_dqn);
  config.dueling = params.get_bool("dueling", config.dueling);
  config.prioritized_replay =
      params.get_bool("prioritized_replay", config.prioritized_replay);
  config.per_alpha = params.get_double("per_alpha", config.per_alpha);
  config.per_beta0 = params.get_double("per_beta0", config.per_beta0);
  config.n_step = params.get_size("n_step", config.n_step);
  config.soft_target_tau = static_cast<float>(
      params.get_double("soft_target_tau", config.soft_target_tau));
  config.epsilon_start = params.get_double("epsilon_start", config.epsilon_start);
  config.epsilon_end = params.get_double("epsilon_end", config.epsilon_end);
  config.epsilon_decay_steps =
      params.get_size("epsilon_decay_steps", config.epsilon_decay_steps);
  if (!params.get_double_list("hidden", {}).empty()) {
    config.hidden_dims.clear();
    for (const double dim : params.get_double_list("hidden", {}))
      config.hidden_dims.push_back(static_cast<std::size_t>(dim));
  }
  return config;
}

std::unique_ptr<core::Manager> make_dqn(const core::VnfEnv& env, const Config& params,
                                        const std::string& default_name,
                                        bool double_dqn, bool dueling,
                                        bool prioritized) {
  rl::DqnConfig config = dqn_config_from(env, params);
  // Variant keys pin the ablation flags unless the caller overrides them.
  if (!params.contains("double_dqn")) config.double_dqn = double_dqn;
  if (!params.contains("dueling")) config.dueling = dueling;
  if (!params.contains("prioritized_replay")) config.prioritized_replay = prioritized;
  return std::make_unique<core::DqnManager>(
      env, config, params.get_string("name", default_name));
}

}  // namespace

ManagerRegistry& ManagerRegistry::instance() {
  static ManagerRegistry registry;
  return registry;
}

void ManagerRegistry::add(const std::string& name, ManagerFactory factory) {
  if (factories_.count(name) > 0)
    throw std::invalid_argument("manager '" + name + "' is already registered");
  factories_[name] = std::move(factory);
}

bool ManagerRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ManagerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<core::Manager> ManagerRegistry::create(const std::string& name,
                                                       const core::VnfEnv& env,
                                                       const Config& params) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& registered : names()) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    throw std::invalid_argument("unknown manager '" + name + "' (registered: " + known +
                                ")");
  }
  return it->second(env, params);
}

ManagerRegistry::ManagerRegistry() {
  // --- DQN family -----------------------------------------------------------
  // "dqn" keeps the paper's default configuration (Double DQN on); the
  // variant names pin the ablation flags of Table III / Figure 3.
  add("dqn", [](const core::VnfEnv& env, const Config& params) {
    return make_dqn(env, params, "dqn", true, false, false);
  });
  add("vanilla_dqn", [](const core::VnfEnv& env, const Config& params) {
    return make_dqn(env, params, "vanilla_dqn", false, false, false);
  });
  add("double_dqn", [](const core::VnfEnv& env, const Config& params) {
    return make_dqn(env, params, "double_dqn", true, false, false);
  });
  add("dueling_ddqn", [](const core::VnfEnv& env, const Config& params) {
    return make_dqn(env, params, "dueling_ddqn", true, true, false);
  });
  add("per_ddqn", [](const core::VnfEnv& env, const Config& params) {
    return make_dqn(env, params, "per_ddqn", true, false, true);
  });

  // --- Other learners -------------------------------------------------------
  add("reinforce", [](const core::VnfEnv& env, const Config& params) {
    rl::ReinforceConfig config;
    config.seed = params.get_uint64("seed", config.seed);
    config.learning_rate = static_cast<float>(
        params.get_double("learning_rate", config.learning_rate));
    config.gamma = static_cast<float>(params.get_double("gamma", config.gamma));
    config.entropy_bonus = static_cast<float>(
        params.get_double("entropy_bonus", config.entropy_bonus));
    return std::make_unique<core::ReinforceManager>(env, config);
  });
  add("actor_critic", [](const core::VnfEnv& env, const Config& params) {
    rl::ActorCriticConfig config;
    config.seed = params.get_uint64("seed", config.seed);
    config.actor_lr =
        static_cast<float>(params.get_double("actor_lr", config.actor_lr));
    config.critic_lr =
        static_cast<float>(params.get_double("critic_lr", config.critic_lr));
    config.gamma = static_cast<float>(params.get_double("gamma", config.gamma));
    return std::make_unique<core::A2cManager>(env, config);
  });
  add("tabular_q", [](const core::VnfEnv& env, const Config& params) {
    rl::TabularQConfig config;
    config.seed = params.get_uint64("seed", config.seed);
    config.learning_rate = params.get_double("learning_rate", config.learning_rate);
    config.gamma = params.get_double("gamma", config.gamma);
    config.epsilon_decay_steps =
        params.get_size("epsilon_decay_steps", config.epsilon_decay_steps);
    config.optimistic_init =
        params.get_double("optimistic_init", config.optimistic_init);
    return std::make_unique<core::TabularManager>(env, config,
                                                  params.get_size("buckets", 4));
  });

  // --- Heuristic baselines --------------------------------------------------
  add("greedy_latency", [](const core::VnfEnv&, const Config&) {
    return std::make_unique<core::GreedyLatencyManager>();
  });
  add("myopic_cost", [](const core::VnfEnv&, const Config&) {
    return std::make_unique<core::MyopicCostManager>();
  });
  add("first_fit", [](const core::VnfEnv&, const Config&) {
    return std::make_unique<core::FirstFitManager>();
  });
  add("static_provision", [](const core::VnfEnv&, const Config& params) {
    return std::make_unique<core::StaticProvisionManager>(
        params.get_int("instances_per_type", 2));
  });
  add("random", [](const core::VnfEnv&, const Config& params) {
    return std::make_unique<core::RandomManager>(params.get_uint64("seed", 99));
  });

  // --- Decorators -----------------------------------------------------------
  // Wraps any registered policy with the periodic consolidation pass:
  //   create("consolidating", env, {{"inner", "first_fit"},
  //                                 {"drain_utilization", "0.4"}}).
  add("consolidating", [](const core::VnfEnv& env, const Config& params) {
    core::ConsolidationOptions options;
    options.drain_utilization =
        params.get_double("drain_utilization", options.drain_utilization);
    options.max_migrations_per_pass =
        params.get_size("max_migrations_per_pass", options.max_migrations_per_pass);
    options.sla_headroom = params.get_double("sla_headroom", options.sla_headroom);
    const std::string inner_name = params.get_string("inner", "greedy_latency");
    if (inner_name == "consolidating")
      throw std::invalid_argument("consolidating manager cannot wrap itself");
    auto inner = ManagerRegistry::instance().create(inner_name, env, params);
    return std::make_unique<core::ConsolidatingManager>(
        std::move(inner), options, params.get_size("period_chains", 50));
  });
}

}  // namespace vnfm::exp
