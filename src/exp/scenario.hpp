// ScenarioCatalog: named workload/topology scenarios that build EnvOptions
// from Config key=value overrides, replacing hand-wired EnvOptions literals
// in drivers. A scenario fixes the defaults (what the scenario *is*); the
// overrides tune the knobs a sweep varies (arrival_rate, nodes, seed, cost
// weights, ...).
//
//   core::VnfEnv env(exp::ScenarioCatalog::instance().build(
//       "diurnal", Config{{"arrival_rate", "2.0"}}));
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/environment.hpp"

namespace vnfm::exp {

/// One named scenario: defaults plus the override application.
struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Builds EnvOptions: scenario defaults first, then `overrides` on top.
  std::function<core::EnvOptions(const Config& overrides)> build;
};

/// Process-wide scenario name -> spec map with the built-in catalog.
class ScenarioCatalog {
 public:
  static ScenarioCatalog& instance();

  /// Registers a scenario; throws std::invalid_argument on a duplicate name.
  void add(ScenarioSpec spec);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const ScenarioSpec& spec(const std::string& name) const;

  /// Builds the named scenario's EnvOptions; throws std::invalid_argument
  /// (listing the registered names) when `name` is unknown.
  [[nodiscard]] core::EnvOptions build(const std::string& name,
                                       const Config& overrides = {}) const;

 private:
  ScenarioCatalog();  // registers the built-in scenarios

  std::map<std::string, ScenarioSpec> specs_;
};

/// Applies the shared override keys to `options` and returns the result.
/// Recognised keys: nodes, cpu_capacity_mean, capacity_jitter, topology_seed,
/// arrival_rate, diurnal (bool), diurnal_amplitude, rate_jitter,
/// peak_local_hour, workload_seed, idle_timeout_s, max_utilization,
/// wan_bandwidth_rps, w_deploy, w_running, w_latency_per_ms, w_sla_violation,
/// w_rejection, w_revenue, w_migration, reward_scale, seed.
[[nodiscard]] core::EnvOptions apply_env_overrides(core::EnvOptions options,
                                                   const Config& overrides);

}  // namespace vnfm::exp
