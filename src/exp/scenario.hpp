// ScenarioCatalog: composable, named workload/topology scenarios building
// EnvOptions (workload-model factory + fault EventSchedule included) from
// Config key=value overrides.
//
// Scenarios compose by expression: "<base>[+<overlay>...]". The first token
// names a base scenario (what world), every further token an overlay that
// wraps the workload-model factory (flash-crowd, rate-scale) or appends
// infrastructure fault events (node-failure, capacity-drop):
//
//   core::VnfEnv env(exp::ScenarioCatalog::instance().build(
//       "geo-distributed+flash-crowd+node-failure",
//       Config{{"arrival_rate", "2.0"}, {"fail_node", "3"}}));
//
// Overrides are strictly validated: an unrecognised key makes build() throw
// std::invalid_argument naming the key and the accepted key set (no more
// silently ignored typos). Mixed command lines (experiment knobs + scenario
// overrides in one Config) go through filter_known_overrides() first.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/environment.hpp"

namespace vnfm::exp {

/// One named base scenario. `configure` applies the scenario's defaults —
/// workload options, workload-model factory, fault events — onto fresh
/// EnvOptions and may read its scenario-specific keys from the overrides;
/// the shared env override keys are applied by build() afterwards.
struct ScenarioSpec {
  std::string name;         ///< expression token selecting this base
  std::string description;  ///< one-liner for --list-scenarios output
  /// Scenario-specific override keys `configure` reads (registered into the
  /// catalog's accepted key set).
  std::vector<std::string> option_keys;
  /// Applies the scenario's defaults onto fresh EnvOptions (see above).
  std::function<void(core::EnvOptions& options, const Config& overrides)> configure;
};

/// One named overlay: a transformation applied on top of a base scenario
/// (or of earlier overlays) in a composition expression.
struct OverlaySpec {
  std::string name;         ///< expression token selecting this overlay
  std::string description;  ///< one-liner for --list-scenarios output
  std::vector<std::string> option_keys;  ///< override keys `apply` reads
  /// Transforms the options built so far (wraps the workload-model factory
  /// or appends fault events).
  std::function<void(core::EnvOptions& options, const Config& overrides)> apply;
};

/// Process-wide scenario/overlay registry with the built-in catalog.
class ScenarioCatalog {
 public:
  /// The process-wide catalog (built-ins registered on first access).
  static ScenarioCatalog& instance();

  /// Registers a base scenario; throws std::invalid_argument on a duplicate
  /// name or a name containing '+'.
  void add(ScenarioSpec spec);
  /// Registers an overlay (name may coincide with a base scenario: position
  /// in the expression disambiguates — "flash-crowd" is a base first, an
  /// overlay afterwards).
  void add_overlay(OverlaySpec spec);

  /// True when a base scenario of this name is registered.
  [[nodiscard]] bool contains(const std::string& name) const;
  /// True when an overlay of this name is registered.
  [[nodiscard]] bool contains_overlay(const std::string& name) const;
  /// All registered base-scenario names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// All registered overlay names, sorted.
  [[nodiscard]] std::vector<std::string> overlay_names() const;
  /// The named base scenario; throws std::invalid_argument when unknown.
  [[nodiscard]] const ScenarioSpec& spec(const std::string& name) const;
  /// The named overlay; throws std::invalid_argument when unknown.
  [[nodiscard]] const OverlaySpec& overlay(const std::string& name) const;

  /// Builds EnvOptions for a composition expression "<base>[+<overlay>...]".
  /// Throws std::invalid_argument on an unknown base/overlay (listing the
  /// registered names) or an unrecognised override key (listing the accepted
  /// key set).
  [[nodiscard]] core::EnvOptions build(const std::string& expression,
                                       const Config& overrides = {}) const;

  /// Every override key build() accepts (shared env keys plus all
  /// scenario/overlay keys), sorted.
  [[nodiscard]] std::vector<std::string> accepted_keys() const;

  /// Subset of `config` whose keys build() accepts — for command lines that
  /// mix experiment knobs with scenario overrides.
  [[nodiscard]] Config filter_known_overrides(const Config& config) const;

  /// Human-readable catalog listing (bases, overlays, grammar) for
  /// --list-scenarios style output.
  [[nodiscard]] std::string describe() const;

 private:
  ScenarioCatalog();  // registers the built-in scenarios and overlays

  std::map<std::string, ScenarioSpec> specs_;
  std::map<std::string, OverlaySpec> overlays_;
  std::set<std::string> accepted_keys_;
};

/// Splits a composition expression on '+' (trimming whitespace); throws
/// std::invalid_argument on empty tokens.
[[nodiscard]] std::vector<std::string> split_scenario_expression(
    const std::string& expression);

/// Applies the shared override keys to `options` and returns the result.
/// Recognised keys: nodes, cpu_capacity_mean, capacity_jitter, topology_seed,
/// arrival_rate, diurnal (bool), diurnal_amplitude, rate_jitter,
/// peak_local_hour, workload_seed, idle_timeout_s, max_utilization,
/// wan_bandwidth_rps, w_deploy, w_running, w_latency_per_ms, w_sla_violation,
/// w_rejection, w_revenue, w_migration, reward_scale, topology (network model:
/// "constant", "two-tier-edge", "fat-tree-k<k>"), rack_size, link_gbps,
/// core_gbps, link_delay_ms, payload_mbit, seed.
[[nodiscard]] core::EnvOptions apply_env_overrides(core::EnvOptions options,
                                                   const Config& overrides);

}  // namespace vnfm::exp
