#include "exp/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace vnfm::exp {

core::EnvOptions apply_env_overrides(core::EnvOptions options, const Config& overrides) {
  auto& topology = options.topology;
  topology.node_count = overrides.get_size("nodes", topology.node_count);
  topology.cpu_capacity_mean =
      overrides.get_double("cpu_capacity_mean", topology.cpu_capacity_mean);
  topology.capacity_jitter =
      overrides.get_double("capacity_jitter", topology.capacity_jitter);
  topology.seed = overrides.get_uint64("topology_seed", topology.seed);

  auto& workload = options.workload;
  workload.global_arrival_rate =
      overrides.get_double("arrival_rate", workload.global_arrival_rate);
  workload.diurnal_enabled = overrides.get_bool("diurnal", workload.diurnal_enabled);
  workload.diurnal_amplitude =
      overrides.get_double("diurnal_amplitude", workload.diurnal_amplitude);
  workload.rate_jitter = overrides.get_double("rate_jitter", workload.rate_jitter);
  workload.peak_local_hour =
      overrides.get_double("peak_local_hour", workload.peak_local_hour);
  workload.seed = overrides.get_uint64("workload_seed", workload.seed);

  auto& cluster = options.cluster;
  cluster.idle_timeout_s = overrides.get_double("idle_timeout_s", cluster.idle_timeout_s);
  cluster.max_utilization =
      overrides.get_double("max_utilization", cluster.max_utilization);
  cluster.wan_bandwidth_rps =
      overrides.get_double("wan_bandwidth_rps", cluster.wan_bandwidth_rps);

  auto& cost = options.cost;
  cost.w_deploy = overrides.get_double("w_deploy", cost.w_deploy);
  cost.w_running = overrides.get_double("w_running", cost.w_running);
  cost.w_latency_per_ms = overrides.get_double("w_latency_per_ms", cost.w_latency_per_ms);
  cost.w_sla_violation = overrides.get_double("w_sla_violation", cost.w_sla_violation);
  cost.w_rejection = overrides.get_double("w_rejection", cost.w_rejection);
  cost.w_revenue = overrides.get_double("w_revenue", cost.w_revenue);
  cost.w_migration = overrides.get_double("w_migration", cost.w_migration);

  options.reward_scale = overrides.get_double("reward_scale", options.reward_scale);
  options.seed = overrides.get_uint64("seed", options.seed);
  return options;
}

ScenarioCatalog& ScenarioCatalog::instance() {
  static ScenarioCatalog catalog;
  return catalog;
}

void ScenarioCatalog::add(ScenarioSpec spec) {
  if (specs_.count(spec.name) > 0)
    throw std::invalid_argument("scenario '" + spec.name + "' is already registered");
  specs_[spec.name] = std::move(spec);
}

bool ScenarioCatalog::contains(const std::string& name) const {
  return specs_.count(name) > 0;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

const ScenarioSpec& ScenarioCatalog::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    std::string known;
    for (const auto& registered : names()) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    throw std::invalid_argument("unknown scenario '" + name + "' (registered: " + known +
                                ")");
  }
  return it->second;
}

core::EnvOptions ScenarioCatalog::build(const std::string& name,
                                        const Config& overrides) const {
  return spec(name).build(overrides);
}

namespace {

ScenarioSpec make_scenario(std::string name, std::string description,
                           std::function<void(core::EnvOptions&)> defaults) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.build = [defaults = std::move(defaults)](const Config& overrides) {
    core::EnvOptions options;
    defaults(options);
    return apply_env_overrides(options, overrides);
  };
  return spec;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() {
  add(make_scenario("baseline",
                    "8 metros, flat (non-diurnal) Poisson traffic at 2 req/s — the "
                    "control scenario for isolating temporal effects",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = false;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("geo-distributed",
                    "the paper's evaluation setting: 8 world metros, diurnal "
                    "amplitude 0.6, 2 req/s — geographic skew plus follow-the-sun "
                    "non-stationarity",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("diurnal",
                    "strong day/night swing (amplitude 0.8): stresses the "
                    "idle-timeout GC and rewards follow-the-sun capacity shifts",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.8;
                      options.workload.global_arrival_rate = 1.0;
                    }));
  add(make_scenario("flash-crowd",
                    "overload burst: 5 req/s at amplitude 0.9 with maximal per-flow "
                    "rate jitter and aggressive GC — tests admission control under "
                    "pressure",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.9;
                      options.workload.global_arrival_rate = 5.0;
                      options.workload.rate_jitter = 1.0;
                      options.cluster.idle_timeout_s = 60.0;
                    }));
  add(make_scenario("heterogeneous-nodes",
                    "highly unequal node capacities (jitter 0.6): placement must "
                    "respect per-node headroom, not just geography",
                    [](core::EnvOptions& options) {
                      options.topology.capacity_jitter = 0.6;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("large-scale",
                    "all 16 world metros at constant per-node load (0.3 req/s per "
                    "node): the action-space scalability setting of Figure 9",
                    [](core::EnvOptions& options) {
                      options.topology.node_count = 16;
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 4.8;
                    }));
}

}  // namespace vnfm::exp
