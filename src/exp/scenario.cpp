#include "exp/scenario.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/csv.hpp"
#include "edgesim/fault_model.hpp"
#include "edgesim/workload_model.hpp"

namespace vnfm::exp {

namespace {

/// The shared keys apply_env_overrides reads (scenario/overlay keys are
/// registered separately via ScenarioSpec/OverlaySpec::option_keys).
const char* const kEnvOverrideKeys[] = {
    "nodes",          "cpu_capacity_mean", "capacity_jitter",  "topology_seed",
    "arrival_rate",   "diurnal",           "diurnal_amplitude", "rate_jitter",
    "peak_local_hour", "workload_seed",    "idle_timeout_s",   "max_utilization",
    "wan_bandwidth_rps", "w_deploy",       "w_running",        "w_latency_per_ms",
    "w_sla_violation", "w_rejection",      "w_revenue",        "w_migration",
    "reward_scale",   "dense_features",    "candidate_k",      "topology",
    "rack_size",      "link_gbps",         "core_gbps",        "link_delay_ms",
    "payload_mbit",   "fault_features",    "seed"};

}  // namespace

std::vector<std::string> split_scenario_expression(const std::string& expression) {
  std::vector<std::string> tokens;
  std::string::size_type start = 0;
  for (;;) {
    const auto plus = expression.find('+', start);
    std::string token = expression.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    const auto first = token.find_first_not_of(" \t");
    const auto last = token.find_last_not_of(" \t");
    token = first == std::string::npos ? std::string{}
                                       : token.substr(first, last - first + 1);
    if (token.empty())
      throw std::invalid_argument("empty token in scenario expression '" + expression +
                                  "'");
    tokens.push_back(std::move(token));
    if (plus == std::string::npos) return tokens;
    start = plus + 1;
  }
}

core::EnvOptions apply_env_overrides(core::EnvOptions options, const Config& overrides) {
  auto& topology = options.topology;
  topology.node_count = overrides.get_size("nodes", topology.node_count);
  topology.cpu_capacity_mean =
      overrides.get_double("cpu_capacity_mean", topology.cpu_capacity_mean);
  topology.capacity_jitter =
      overrides.get_double("capacity_jitter", topology.capacity_jitter);
  topology.seed = overrides.get_uint64("topology_seed", topology.seed);

  auto& workload = options.workload;
  workload.global_arrival_rate =
      overrides.get_double("arrival_rate", workload.global_arrival_rate);
  workload.diurnal_enabled = overrides.get_bool("diurnal", workload.diurnal_enabled);
  workload.diurnal_amplitude =
      overrides.get_double("diurnal_amplitude", workload.diurnal_amplitude);
  workload.rate_jitter = overrides.get_double("rate_jitter", workload.rate_jitter);
  workload.peak_local_hour =
      overrides.get_double("peak_local_hour", workload.peak_local_hour);
  workload.seed = overrides.get_uint64("workload_seed", workload.seed);

  auto& cluster = options.cluster;
  cluster.idle_timeout_s = overrides.get_double("idle_timeout_s", cluster.idle_timeout_s);
  cluster.max_utilization =
      overrides.get_double("max_utilization", cluster.max_utilization);
  cluster.wan_bandwidth_rps =
      overrides.get_double("wan_bandwidth_rps", cluster.wan_bandwidth_rps);

  auto& cost = options.cost;
  cost.w_deploy = overrides.get_double("w_deploy", cost.w_deploy);
  cost.w_running = overrides.get_double("w_running", cost.w_running);
  cost.w_latency_per_ms = overrides.get_double("w_latency_per_ms", cost.w_latency_per_ms);
  cost.w_sla_violation = overrides.get_double("w_sla_violation", cost.w_sla_violation);
  cost.w_rejection = overrides.get_double("w_rejection", cost.w_rejection);
  cost.w_revenue = overrides.get_double("w_revenue", cost.w_revenue);
  cost.w_migration = overrides.get_double("w_migration", cost.w_migration);

  auto& network = options.network;
  network.topology = overrides.get_string("topology", network.topology);
  network.flow.rack_size = overrides.get_size("rack_size", network.flow.rack_size);
  network.flow.link_gbps = overrides.get_double("link_gbps", network.flow.link_gbps);
  network.flow.core_gbps = overrides.get_double("core_gbps", network.flow.core_gbps);
  network.flow.link_delay_ms =
      overrides.get_double("link_delay_ms", network.flow.link_delay_ms);
  network.flow.payload_mbit =
      overrides.get_double("payload_mbit", network.flow.payload_mbit);

  options.reward_scale = overrides.get_double("reward_scale", options.reward_scale);
  options.dense_features = overrides.get_bool("dense_features", options.dense_features);
  options.fault_features = overrides.get_bool("fault_features", options.fault_features);
  options.candidate_k = overrides.get_size("candidate_k", options.candidate_k);
  options.seed = overrides.get_uint64("seed", options.seed);
  return options;
}

ScenarioCatalog& ScenarioCatalog::instance() {
  static ScenarioCatalog catalog;
  return catalog;
}

void ScenarioCatalog::add(ScenarioSpec spec) {
  if (spec.name.find('+') != std::string::npos)
    throw std::invalid_argument("scenario names must not contain '+'");
  if (specs_.count(spec.name) > 0)
    throw std::invalid_argument("scenario '" + spec.name + "' is already registered");
  accepted_keys_.insert(spec.option_keys.begin(), spec.option_keys.end());
  specs_[spec.name] = std::move(spec);
}

void ScenarioCatalog::add_overlay(OverlaySpec spec) {
  if (spec.name.find('+') != std::string::npos)
    throw std::invalid_argument("overlay names must not contain '+'");
  if (overlays_.count(spec.name) > 0)
    throw std::invalid_argument("overlay '" + spec.name + "' is already registered");
  accepted_keys_.insert(spec.option_keys.begin(), spec.option_keys.end());
  overlays_[spec.name] = std::move(spec);
}

bool ScenarioCatalog::contains(const std::string& name) const {
  return specs_.count(name) > 0;
}

bool ScenarioCatalog::contains_overlay(const std::string& name) const {
  return overlays_.count(name) > 0;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

std::vector<std::string> ScenarioCatalog::overlay_names() const {
  std::vector<std::string> out;
  out.reserve(overlays_.size());
  for (const auto& [name, spec] : overlays_) out.push_back(name);
  return out;
}

const ScenarioSpec& ScenarioCatalog::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown scenario '" + name +
                                "' (registered: " + join_comma(names()) + ")");
  return it->second;
}

const OverlaySpec& ScenarioCatalog::overlay(const std::string& name) const {
  const auto it = overlays_.find(name);
  if (it == overlays_.end())
    throw std::invalid_argument("unknown scenario overlay '" + name +
                                "' (registered: " + join_comma(overlay_names()) + ")");
  return it->second;
}

std::vector<std::string> ScenarioCatalog::accepted_keys() const {
  return {accepted_keys_.begin(), accepted_keys_.end()};
}

Config ScenarioCatalog::filter_known_overrides(const Config& config) const {
  Config filtered;
  for (const auto& [key, value] : config.values())
    if (accepted_keys_.count(key) > 0) filtered.set(key, value);
  return filtered;
}

core::EnvOptions ScenarioCatalog::build(const std::string& expression,
                                        const Config& overrides) const {
  const auto tokens = split_scenario_expression(expression);
  const ScenarioSpec& base = spec(tokens.front());
  std::vector<const OverlaySpec*> chain;
  chain.reserve(tokens.size() - 1);
  for (std::size_t i = 1; i < tokens.size(); ++i) chain.push_back(&overlay(tokens[i]));

  // Strict validation scoped to this expression: the shared env keys plus
  // only the keys of the base and overlays actually named — a key of an
  // absent overlay (flash_magnitude without +flash-crowd) is as much a
  // silent no-op as a typo, so both throw.
  std::set<std::string> allowed(std::begin(kEnvOverrideKeys), std::end(kEnvOverrideKeys));
  allowed.insert(base.option_keys.begin(), base.option_keys.end());
  for (const OverlaySpec* overlay_spec : chain)
    allowed.insert(overlay_spec->option_keys.begin(), overlay_spec->option_keys.end());
  for (const auto& [key, value] : overrides.values()) {
    if (allowed.count(key) == 0)
      throw std::invalid_argument(
          "unrecognised override '" + key + "' for scenario '" + expression +
          "' (accepted keys: " + join_comma({allowed.begin(), allowed.end()}) + ")");
  }

  core::EnvOptions options;
  base.configure(options, overrides);
  for (const OverlaySpec* overlay_spec : chain) overlay_spec->apply(options, overrides);
  options = apply_env_overrides(options, overrides);

  // The final node count is only known here (the `nodes` override lands
  // after the overlays), so event node indices are checked last: failing at
  // build() with the offending index beats an opaque out-of-range crash
  // mid-episode.
  for (const edgesim::ScheduledEvent& event : options.events.events()) {
    if (edgesim::index(event.node) >= options.topology.node_count)
      throw std::invalid_argument(
          "scenario '" + expression + "' schedules an event on node " +
          std::to_string(edgesim::index(event.node)) + " but the topology has only " +
          std::to_string(options.topology.node_count) +
          " nodes (check fail_node/capacity_node)");
  }
  return options;
}

std::string ScenarioCatalog::describe() const {
  std::ostringstream out;
  out << "Scenario expressions compose as <base>[+<overlay>...], e.g.\n"
      << "  geo-distributed+flash-crowd+node-failure\n\nBase scenarios:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  " << name << "\n      " << spec.description << "\n";
    if (!spec.option_keys.empty()) out << "      keys: " << join_comma(spec.option_keys) << "\n";
  }
  out << "\nOverlays:\n";
  for (const auto& [name, overlay_spec] : overlays_) {
    out << "  " << name << "\n      " << overlay_spec.description << "\n";
    if (!overlay_spec.option_keys.empty())
      out << "      keys: " << join_comma(overlay_spec.option_keys) << "\n";
  }
  out << "\nShared override keys:\n  " << join_comma({std::begin(kEnvOverrideKeys),
                                                std::end(kEnvOverrideKeys)})
      << "\n";
  return out.str();
}

namespace {

ScenarioSpec make_scenario(std::string name, std::string description,
                           std::function<void(core::EnvOptions&)> defaults) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.configure = [defaults = std::move(defaults)](core::EnvOptions& options,
                                                    const Config&) { defaults(options); };
  return spec;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() {
  accepted_keys_.insert(std::begin(kEnvOverrideKeys), std::end(kEnvOverrideKeys));

  add(make_scenario("baseline",
                    "8 metros, flat (non-diurnal) Poisson traffic at 2 req/s — the "
                    "control scenario for isolating temporal effects",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = false;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("geo-distributed",
                    "the paper's evaluation setting: 8 world metros, diurnal "
                    "amplitude 0.6, 2 req/s — geographic skew plus follow-the-sun "
                    "non-stationarity",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("diurnal",
                    "strong day/night swing (amplitude 0.8): stresses the "
                    "idle-timeout GC and rewards follow-the-sun capacity shifts",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.8;
                      options.workload.global_arrival_rate = 1.0;
                    }));
  add(make_scenario("flash-crowd",
                    "overload burst: 5 req/s at amplitude 0.9 with maximal per-flow "
                    "rate jitter and aggressive GC — tests admission control under "
                    "pressure",
                    [](core::EnvOptions& options) {
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.9;
                      options.workload.global_arrival_rate = 5.0;
                      options.workload.rate_jitter = 1.0;
                      options.cluster.idle_timeout_s = 60.0;
                    }));
  add(make_scenario("heterogeneous-nodes",
                    "highly unequal node capacities (jitter 0.6): placement must "
                    "respect per-node headroom, not just geography",
                    [](core::EnvOptions& options) {
                      options.topology.capacity_jitter = 0.6;
                      options.workload.global_arrival_rate = 2.0;
                    }));
  add(make_scenario("large-scale",
                    "all 16 world metros at constant per-node load (0.3 req/s per "
                    "node): the action-space scalability setting of Figure 9",
                    [](core::EnvOptions& options) {
                      options.topology.node_count = 16;
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 4.8;
                    }));
  add(make_scenario("large-scale-1k",
                    "1000 nodes (16 metros + synthetic satellite sites), diurnal "
                    "amplitude 0.6, 10 req/s, candidate-set pruning k=32 — the "
                    "incremental-state scalability setting",
                    [](core::EnvOptions& options) {
                      options.topology.node_count = 1000;
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 10.0;
                      options.candidate_k = 32;
                    }));
  add(make_scenario("large-scale-10k",
                    "10000 nodes, diurnal amplitude 0.6, 50 req/s, candidate-set "
                    "pruning k=32 — city-scale stress for the O(dirty) environment",
                    [](core::EnvOptions& options) {
                      options.topology.node_count = 10000;
                      options.workload.diurnal_enabled = true;
                      options.workload.diurnal_amplitude = 0.6;
                      options.workload.global_arrival_rate = 50.0;
                      options.candidate_k = 32;
                    }));
  add({.name = "trace-replay",
       .description =
           "trace-driven workload: replays a recorded request trace CSV "
           "(offset_s,region,sfc,rate_rps,duration_s), looping with jittered "
           "re-seeding; `trace` points at the file",
       .option_keys = {"trace"},
       .configure =
           [](core::EnvOptions& options, const Config& overrides) {
             options.workload.diurnal_enabled = false;
             options.workload_model = edgesim::TraceReplayModel::factory(
                 overrides.get_string("trace", "bench/data/trace_sample.csv"));
           }});

  add_overlay(
      {.name = "flash-crowd",
       .description =
           "correlated regional bursts on top of any workload: every "
           "`flash_period_s` a seed-derived epicentre metro and its "
           "`flash_spread`-1 nearest neighbours run at `flash_magnitude`x rate "
           "for `flash_duration_s`",
       .option_keys = {"flash_magnitude", "flash_period_s", "flash_duration_s",
                       "flash_spread", "flash_start_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             edgesim::FlashCrowdOptions burst;
             burst.magnitude = overrides.get_double("flash_magnitude", burst.magnitude);
             burst.period_s = overrides.get_double("flash_period_s", burst.period_s);
             burst.duration_s =
                 overrides.get_double("flash_duration_s", burst.duration_s);
             burst.spread = overrides.get_size("flash_spread", burst.spread);
             burst.start_s = overrides.get_double("flash_start_s", burst.start_s);
             options.workload_model =
                 edgesim::flash_crowd_factory(options.workload_model, burst);
           }});
  add_overlay({.name = "rate-scale",
               .description = "multiplies the whole arrival-rate surface by "
                              "`rate_scale` (default 1 = identity; set it to "
                              "actually scale — load sweeps over composed scenarios)",
               .option_keys = {"rate_scale"},
               .apply =
                   [](core::EnvOptions& options, const Config& overrides) {
                     options.workload_model = edgesim::rate_scale_factory(
                         options.workload_model,
                         overrides.get_double("rate_scale", 1.0));
                   }});
  add_overlay(
      {.name = "node-failure",
       .description =
           "fail-stop of node `fail_node` at `fail_at_s` (chains crossing it "
           "are killed, placements masked off), recovering at `recover_at_s` "
           "(0 = never)",
       .option_keys = {"fail_node", "fail_at_s", "recover_at_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             const edgesim::NodeId node{
                 static_cast<std::uint32_t>(overrides.get_size("fail_node", 0))};
             options.events.fail_node(overrides.get_double("fail_at_s", 1800.0), node);
             const double recover_at = overrides.get_double("recover_at_s", 5400.0);
             if (recover_at > 0.0) options.events.recover_node(recover_at, node);
           }});
  add_overlay(
      {.name = "incast",
       .description =
           "sustained single-region hotspot on top of any workload: metro "
           "`incast_region` runs at `incast_magnitude`x rate from "
           "`incast_start_s` for `incast_duration_s` — with a flow network "
           "topology this concentrates traffic on one rack's uplinks",
       .option_keys = {"incast_region", "incast_magnitude", "incast_start_s",
                       "incast_duration_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             edgesim::HotspotOptions hotspot;
             hotspot.region = static_cast<std::uint32_t>(
                 overrides.get_size("incast_region", hotspot.region));
             hotspot.magnitude =
                 overrides.get_double("incast_magnitude", hotspot.magnitude);
             hotspot.start_s = overrides.get_double("incast_start_s", hotspot.start_s);
             hotspot.duration_s =
                 overrides.get_double("incast_duration_s", hotspot.duration_s);
             options.workload_model =
                 edgesim::hotspot_factory(options.workload_model, hotspot);
           }});
  add_overlay(
      {.name = "cross-rack",
       .description =
           "heavier east-west traffic profile: raises the per-hop payload to "
           "`cross_rack_payload_mbit` and scales core/aggregation capacity by "
           "`cross_rack_core_factor` — makes inter-rack hops the bottleneck "
           "under a flow network topology (no effect on the constant model)",
       .option_keys = {"cross_rack_payload_mbit", "cross_rack_core_factor"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             options.network.flow.payload_mbit =
                 overrides.get_double("cross_rack_payload_mbit", 32.0);
             options.network.flow.core_gbps *=
                 overrides.get_double("cross_rack_core_factor", 0.5);
           }});
  add_overlay(
      {.name = "link-failure",
       .description =
           "rack-correlated fabric fault: at `link_fail_at_s` one uplink pair "
           "of node `link_fail_node`'s rack ToR fails — crossing chains "
           "reroute where the fabric allows it and are killed fail-stop where "
           "it does not — with every failed uplink of the rack recovering at "
           "`link_recover_at_s` (0 = never); a no-op under the constant model",
       .option_keys = {"link_fail_node", "link_fail_at_s", "link_recover_at_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             const edgesim::NodeId node{
                 static_cast<std::uint32_t>(overrides.get_size("link_fail_node", 0))};
             options.events.fail_link(overrides.get_double("link_fail_at_s", 1800.0),
                                      node);
             const double recover_at = overrides.get_double("link_recover_at_s", 5400.0);
             if (recover_at > 0.0) options.events.recover_link(recover_at, node);
           }});
  add_overlay(
      {.name = "capacity-drop",
       .description =
           "scales node `capacity_node`'s CPU capacity to `capacity_factor`x "
           "at `capacity_at_s`, restoring it at `capacity_restore_s` (0 = never)",
       .option_keys = {"capacity_node", "capacity_factor", "capacity_at_s",
                       "capacity_restore_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             const edgesim::NodeId node{
                 static_cast<std::uint32_t>(overrides.get_size("capacity_node", 0))};
             options.events.scale_capacity(
                 overrides.get_double("capacity_at_s", 1800.0), node,
                 overrides.get_double("capacity_factor", 0.5));
             const double restore_at = overrides.get_double("capacity_restore_s", 5400.0);
             if (restore_at > 0.0) options.events.scale_capacity(restore_at, node, 1.0);
           }});

  // Generative fault overlays. All three read the shared `mtbf_s`/`mttr_s`/
  // `fault_seed` keys (per the catalog grammar, composed overlays then share
  // one override value — their built-in defaults differ instead), and all
  // compose through compose_fault_factories so `+mtbf-faults+link-flaps`
  // yields one merged deterministic stream.
  add_overlay(
      {.name = "mtbf-faults",
       .description =
           "stochastic per-node fail-stop/repair processes on top of any "
           "base: every node alternates up-times ~ Exp(`mtbf_s`, default 4h) "
           "and down-times ~ Exp(`mttr_s`, default 10min) on its own "
           "seed-derived stream (`fault_seed` selects a different stream on "
           "the same episode)",
       .option_keys = {"mtbf_s", "mttr_s", "fault_seed"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             edgesim::MtbfFaultOptions faults;
             faults.mtbf_s = overrides.get_double("mtbf_s", faults.mtbf_s);
             faults.mttr_s = overrides.get_double("mttr_s", faults.mttr_s);
             faults.fault_seed = overrides.get_uint64("fault_seed", faults.fault_seed);
             options.fault_model = edgesim::compose_fault_factories(
                 options.fault_model, edgesim::mtbf_fault_factory(faults));
           }});
  add_overlay(
      {.name = "rack-faults",
       .description =
           "rack-correlated failures: one draw downs a whole rack of "
           "`rack_fault_size` hosts (0 = the fabric's rack_size) — every host "
           "fail-stop (`rack_fault_mode=hosts`, the default) or the rack's "
           "ToR uplinks (`rack_fault_mode=uplinks`, flow fabrics only) — with "
           "rack up-times ~ Exp(`mtbf_s`, default 12h) and down-times ~ "
           "Exp(`mttr_s`, default 15min)",
       .option_keys = {"mtbf_s", "mttr_s", "fault_seed", "rack_fault_mode",
                       "rack_fault_size"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             edgesim::RackFaultOptions faults;
             faults.mtbf_s = overrides.get_double("mtbf_s", faults.mtbf_s);
             faults.mttr_s = overrides.get_double("mttr_s", faults.mttr_s);
             faults.fault_seed = overrides.get_uint64("fault_seed", faults.fault_seed);
             faults.rack_size = overrides.get_size("rack_fault_size", faults.rack_size);
             const std::string mode =
                 overrides.get_string("rack_fault_mode", "hosts");
             if (mode == "hosts") {
               faults.mode = edgesim::RackFaultMode::kHosts;
             } else if (mode == "uplinks") {
               faults.mode = edgesim::RackFaultMode::kUplinks;
             } else {
               throw std::invalid_argument("rack_fault_mode must be 'hosts' or "
                                           "'uplinks', got '" + mode + "'");
             }
             options.fault_model = edgesim::compose_fault_factories(
                 options.fault_model, edgesim::rack_fault_factory(faults));
           }});
  add_overlay(
      {.name = "link-flaps",
       .description =
           "per-rack uplink flap processes with bounded repair: each rack's "
           "ToR uplink alternates up-times ~ Exp(`mtbf_s`, default 2h) and "
           "down-times min(Exp(`mttr_s`, default 2min), `flap_down_cap_s`) — "
           "a no-op under the constant network model, real reroutes/kills "
           "under flow fabrics",
       .option_keys = {"mtbf_s", "mttr_s", "fault_seed", "flap_down_cap_s"},
       .apply =
           [](core::EnvOptions& options, const Config& overrides) {
             edgesim::LinkFlapOptions faults;
             faults.mtbf_s = overrides.get_double("mtbf_s", faults.mtbf_s);
             faults.mttr_s = overrides.get_double("mttr_s", faults.mttr_s);
             faults.fault_seed = overrides.get_uint64("fault_seed", faults.fault_seed);
             faults.down_cap_s =
                 overrides.get_double("flap_down_cap_s", faults.down_cap_s);
             options.fault_model = edgesim::compose_fault_factories(
                 options.fault_model, edgesim::link_flap_factory(faults));
           }});
}

}  // namespace vnfm::exp
