#include "exp/report_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/experiment.hpp"

namespace vnfm::exp {
namespace {

/// Round-trip precision double formatting (shared by CSV and JSON output).
std::string number(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  return out;
}

void write_csv_header(std::ofstream& out, const std::vector<std::string>& prefix) {
  bool first = true;
  for (const std::string& column : prefix) {
    if (!first) out << ',';
    out << column;
    first = false;
  }
  for (const std::string& column : episode_result_columns()) out << ',' << column;
  out << '\n';
}

void write_csv_metrics(std::ofstream& out, const core::EpisodeResult& result) {
  for (const double value : episode_result_row(result)) out << ',' << number(value);
  out << '\n';
}

/// Emits `"key": <value>` pairs of one EpisodeResult (no braces).
void write_json_metrics(std::ofstream& out, const core::EpisodeResult& result,
                        const std::string& indent) {
  const auto& columns = episode_result_columns();
  const auto values = episode_result_row(result);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out << indent << '"' << columns[i] << "\": " << number(values[i]);
    if (i + 1 < columns.size()) out << ',';
    out << '\n';
  }
}

}  // namespace

const std::vector<std::string>& episode_result_columns() {
  static const std::vector<std::string> columns{
      "total_reward",      "requests",         "cost_per_request",
      "total_cost",        "acceptance_ratio", "mean_latency_ms",
      "p95_latency_ms",    "sla_violation_ratio", "mean_utilization",
      "deployments",       "running_cost",     "revenue"};
  return columns;
}

std::vector<double> episode_result_row(const core::EpisodeResult& result) {
  return {result.total_reward,
          static_cast<double>(result.requests),
          result.cost_per_request,
          result.total_cost,
          result.acceptance_ratio,
          result.mean_latency_ms,
          result.p95_latency_ms,
          result.sla_violation_ratio,
          result.mean_utilization,
          static_cast<double>(result.deployments),
          result.running_cost,
          result.revenue};
}

void write_eval_csv(const EvalReport& report, const std::string& path) {
  auto out = open_or_throw(path);
  write_csv_header(out, {"seed"});
  for (std::size_t i = 0; i < report.per_seed.size(); ++i) {
    out << (i < report.seeds.size() ? std::to_string(report.seeds[i]) : "");
    write_csv_metrics(out, report.per_seed[i]);
  }
  out << "mean";
  write_csv_metrics(out, report.mean);
}

void write_eval_json(const EvalReport& report, const std::string& path) {
  auto out = open_or_throw(path);
  out << "{\n  \"seeds\": [";
  for (std::size_t i = 0; i < report.seeds.size(); ++i) {
    if (i > 0) out << ", ";
    out << report.seeds[i];
  }
  out << "],\n  \"mean\": {\n";
  write_json_metrics(out, report.mean, "    ");
  out << "  },\n  \"per_seed\": [\n";
  for (std::size_t i = 0; i < report.per_seed.size(); ++i) {
    out << "    {\n";
    if (i < report.seeds.size())
      out << "      \"seed\": " << report.seeds[i] << ",\n";
    write_json_metrics(out, report.per_seed[i], "      ");
    out << "    }" << (i + 1 < report.per_seed.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

void write_curve_csv(const std::vector<core::EpisodeResult>& curve,
                     const std::vector<std::uint64_t>& seeds,
                     const std::string& path) {
  auto out = open_or_throw(path);
  const bool with_seeds = !seeds.empty();
  write_csv_header(out, with_seeds ? std::vector<std::string>{"episode", "seed"}
                                   : std::vector<std::string>{"episode"});
  for (std::size_t i = 0; i < curve.size(); ++i) {
    out << i;
    if (with_seeds) out << ',' << (i < seeds.size() ? std::to_string(seeds[i]) : "");
    write_csv_metrics(out, curve[i]);
  }
}

void write_curve_json(const std::vector<core::EpisodeResult>& curve,
                      const std::vector<std::uint64_t>& seeds,
                      const core::TrainStats* stats, const std::string& path) {
  auto out = open_or_throw(path);
  out << "{\n  \"stats\": ";
  if (stats == nullptr) {
    out << "null";
  } else {
    out << "{\n"
        << "    \"wall_seconds\": " << number(stats->wall_seconds) << ",\n"
        << "    \"transitions\": " << stats->transitions << ",\n"
        << "    \"steps_per_second\": " << number(stats->steps_per_second()) << ",\n"
        << "    \"episodes\": " << stats->episodes << ",\n"
        << "    \"rounds\": " << stats->rounds << ",\n"
        << "    \"actor_threads\": " << stats->actor_threads << ",\n"
        << "    \"learner_threads\": " << stats->learner_threads << ",\n"
        << "    \"grad_steps\": " << stats->grad_steps << ",\n"
        << "    \"grad_step_micros\": " << number(stats->grad_step_micros()) << ",\n"
        << "    \"parallel\": " << (stats->parallel ? "true" : "false") << "\n  }";
  }
  out << ",\n  \"episodes\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    out << "    {\n      \"episode\": " << i << ",\n";
    if (i < seeds.size()) out << "      \"seed\": " << seeds[i] << ",\n";
    write_json_metrics(out, curve[i], "      ");
    out << "    }" << (i + 1 < curve.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

void write_serve_json(const core::ServeStats& stats, const core::ServeOptions& options,
                      const std::string& path) {
  auto out = open_or_throw(path);
  out << "{\n  \"options\": {\n"
      << "    \"shards\": " << options.shards << ",\n"
      << "    \"partitions\": " << options.partitions << ",\n"
      << "    \"requests_per_partition\": " << options.requests_per_partition << ",\n"
      << "    \"batch_max\": " << options.batch_max << ",\n"
      << "    \"queue_capacity\": " << options.queue_capacity << ",\n"
      << "    \"time_scale\": " << number(options.time_scale) << ",\n"
      << "    \"seed\": " << options.seed << "\n  },\n";
  out << "  \"deterministic\": {\n"
      << "    \"requests\": " << stats.requests << ",\n"
      << "    \"decisions\": " << stats.decisions << ",\n"
      << "    \"accepted\": " << stats.accepted << ",\n"
      << "    \"rejected\": " << stats.rejected << ",\n"
      << "    \"total_cost\": " << number(stats.total_cost) << ",\n"
      << "    \"decision_digest\": \"" << std::hex << stats.decision_digest << std::dec
      << "\",\n    \"partitions\": [\n";
  for (std::size_t p = 0; p < stats.partitions.size(); ++p) {
    const core::ServePartitionStats& ps = stats.partitions[p];
    out << "      {\"partition\": " << p << ", \"requests\": " << ps.requests
        << ", \"decisions\": " << ps.decisions << ", \"accepted\": " << ps.accepted
        << ", \"rejected\": " << ps.rejected
        << ", \"total_cost\": " << number(ps.total_cost) << ", \"decision_digest\": \""
        << std::hex << ps.decision_digest << std::dec << "\"}"
        << (p + 1 < stats.partitions.size() ? "," : "") << '\n';
  }
  out << "    ]\n  },\n";
  out << "  \"wall_clock\": {\n"
      << "    \"wall_seconds\": " << number(stats.wall_seconds) << ",\n"
      << "    \"decisions_per_second\": " << number(stats.decisions_per_second()) << ",\n"
      << "    \"requests_per_second\": " << number(stats.requests_per_second()) << ",\n"
      << "    \"decision_micros\": " << number(stats.decision_micros()) << ",\n"
      << "    \"latency_p50_micros\": " << number(stats.latency_micros(0.50)) << ",\n"
      << "    \"latency_p95_micros\": " << number(stats.latency_micros(0.95)) << ",\n"
      << "    \"latency_p99_micros\": " << number(stats.latency_micros(0.99)) << ",\n"
      << "    \"latency_max_micros\": " << number(stats.latency.max_micros()) << ",\n"
      << "    \"batches\": " << stats.batches << ",\n"
      << "    \"batched_decisions\": " << stats.batched_decisions << ",\n"
      << "    \"single_decisions\": " << stats.single_decisions << ",\n"
      << "    \"backpressure_waits\": " << stats.backpressure_waits << ",\n"
      << "    \"queue_high_water\": " << stats.queue_high_water << ",\n"
      << "    \"shards\": [\n";
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const core::ServeShardStats& ss = stats.shards[s];
    out << "      {\"shard\": " << s << ", \"requests\": " << ss.latency.count()
        << ", \"batches\": " << ss.batches
        << ", \"batched_decisions\": " << ss.batched_decisions
        << ", \"single_decisions\": " << ss.single_decisions
        << ", \"backpressure_waits\": " << ss.backpressure_waits
        << ", \"queue_high_water\": " << ss.queue_high_water
        << ", \"latency_p50_micros\": " << number(ss.latency.quantile(0.50))
        << ", \"latency_p99_micros\": " << number(ss.latency.quantile(0.99)) << "}"
        << (s + 1 < stats.shards.size() ? "," : "") << '\n';
  }
  out << "    ]\n  }\n}\n";
}

void write_reward_curves_csv(const std::vector<std::string>& labels,
                             const std::vector<std::vector<double>>& curves,
                             const std::string& path) {
  if (labels.size() != curves.size())
    throw std::invalid_argument("one label per curve required");
  std::size_t episodes = 0;
  for (const auto& curve : curves) {
    if (!curves.empty() && curve.size() != curves.front().size())
      throw std::invalid_argument("all curves must have equal length");
    episodes = curve.size();
  }
  auto out = open_or_throw(path);
  out << "episode";
  for (const std::string& label : labels) out << ',' << label;
  out << '\n';
  for (std::size_t e = 0; e < episodes; ++e) {
    out << e;
    for (const auto& curve : curves) out << ',' << number(curve[e]);
    out << '\n';
  }
}

}  // namespace vnfm::exp
